#include "pcss/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "pcss/obs/metrics.h"
#include "pcss/tensor/plan.h"
#include "pcss/tensor/pool.h"
#include "pcss/tensor/simd.h"

// NodeArgs is passed with designated initializers; omitted fields are
// value-initialized per the standard, so the "missing initializer"
// diagnostic is noise here.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace pcss::tensor::ops {

namespace {

using detail::check;

/// Optional per-node backward state passed to make_node. Scalars land in
/// the TensorImpl's inline slots; buffer-carrying ops attach a ctx.
struct NodeArgs {
  std::int64_t i0 = 0;
  std::int64_t i1 = 0;
  float f0 = 0.0f;
  bool flag = false;
  bool needs_output = false;  ///< backward reads the node's own data
  std::unique_ptr<BackwardCtx> ctx;
  ForwardFn fwd = nullptr;  ///< replay rule; null marks the op uncapturable
};

/// Builds the result node, wiring parents and the backward dispatch only
/// when some input participates in autograd (predict-mode graphs carry no
/// backward state at all).
Tensor make_node(Shape shape, FloatBuffer data, std::vector<TensorImplPtr> parents,
                 BackwardFn backward_fn, NodeArgs args = {}) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  bool rg = false;
  for (const auto& p : parents) {
    if (p && p->requires_grad) rg = true;
  }
  if (rg) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = backward_fn;
    impl->op_i0 = args.i0;
    impl->op_i1 = args.i1;
    impl->op_f0 = args.f0;
    impl->op_flag = args.flag;
    impl->backward_reads_output = args.needs_output;
    impl->ctx = std::move(args.ctx);
    impl->forward_fn = args.fwd;
    // Creation order is a valid topological order (parents exist before
    // children by construction), so the recording is the replay schedule.
    if (plan::detail::recording()) plan::detail::record_node(impl);
  }
  return Tensor(std::move(impl));
}

/// Telemetry only (lint rule D006 keeps obs out of document and cache
/// paths): GEMM call/FLOP counters for the metrics registry. Static refs
/// amortize the registry lookup to one per process; the per-call cost is
/// two relaxed atomic adds. No clock reads here — tensor stays inside
/// the D002 chrono ban; time attribution comes from the span tracer at
/// the attack-engine layer.
void note_gemm(std::int64_t n, std::int64_t k, std::int64_t m) {
  static obs::metrics::Counter& calls = obs::metrics::counter("tensor.gemm.calls");
  static obs::metrics::Counter& flops = obs::metrics::counter("tensor.gemm.flops");
  calls.add(1);
  flops.add(static_cast<std::uint64_t>(2 * n * k * m));
}

// ---------------------------------------------------------------------------
// GEMM entry points.
//
// The register-tiled kernels live in simd_kernels.inc and are reached
// through the runtime dispatch table (scalar or AVX2; bit-identical by
// the contract in simd.h). Every output element accumulates in
// ascending-p order in a single chain, independent of register blocking
// and ISA, so results are identical for any tile size, thread count and
// dispatch path.
// ---------------------------------------------------------------------------

/// C[n,k] += A[n,m] * B^T where B is [k,m]. B is packed (transposed) into
/// a pooled [m,k] buffer once, turning the dot-product form into the same
/// vectorizable panel kernel as gemm_nn.
void gemm_a_bt(const float* __restrict a, const float* __restrict b, float* __restrict c,
               std::int64_t n, std::int64_t m, std::int64_t k) {
  FloatBuffer bt = pool::acquire(static_cast<size_t>(m * k));
  for (std::int64_t j = 0; j < k; ++j) {
    for (std::int64_t p = 0; p < m; ++p) bt[static_cast<size_t>(p * k + j)] = b[j * m + p];
  }
  note_gemm(n, m, k);
  simd::active().gemm_nn(a, bt.data(), c, n, m, k);
  pool::release(std::move(bt));
}

void check_matrix(const Tensor& t, const char* name) {
  check(t.defined() && t.rank() == 2, std::string(name) + ": expected rank-2 tensor");
}

TensorImpl* parent(TensorImpl& node, size_t i) { return node.parents[i].get(); }

// ---------------------------------------------------------------------------
// Backward rules. Each reads the node's grad plus inline/ctx state and
// accumulates into the parents; expression shapes mirror the previous
// closure implementations exactly so gradients stay bit-identical.
// ---------------------------------------------------------------------------

void add_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const size_t n = node.grad.size();
  if (pa->requires_grad) {
    pa->ensure_grad();
    K.acc_add(pa->grad.data(), node.grad.data(), n);
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    K.acc_add(pb->grad.data(), node.grad.data(), n);
  }
}

void sub_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const size_t n = node.grad.size();
  if (pa->requires_grad) {
    pa->ensure_grad();
    K.acc_add(pa->grad.data(), node.grad.data(), n);
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    K.acc_axpy(pb->grad.data(), node.grad.data(), -1.0f, n);
  }
}

void mul_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const size_t n = node.grad.size();
  if (pa->requires_grad) {
    pa->ensure_grad();
    K.acc_mul(pa->grad.data(), node.grad.data(), pb->data.data(), n);
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    K.acc_mul(pb->grad.data(), node.grad.data(), pa->data.data(), n);
  }
}

void scale_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_axpy(pa->grad.data(), node.grad.data(), node.op_f0,
                          node.grad.size());
}

void add_scalar_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_add(pa->grad.data(), node.grad.data(), node.grad.size());
}

void add_rowvec_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const std::int64_t n = node.shape[0], c = node.shape[1];
  if (px->requires_grad) {
    px->ensure_grad();
    K.acc_add(px->grad.data(), node.grad.data(), node.grad.size());
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    K.acc_col_sum(pb->grad.data(), node.grad.data(), n, c);
  }
}

void matmul_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const std::int64_t n = pa->shape[0], k = pa->shape[1], m = pb->shape[1];
  if (pa->requires_grad) {
    pa->ensure_grad();
    // dA = dY * B^T
    gemm_a_bt(node.grad.data(), pb->data.data(), pa->grad.data(), n, m, k);
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    // dB = A^T * dY
    simd::active().gemm_at_b(pa->data.data(), node.grad.data(), pb->grad.data(), n, k, m);
  }
}

void linear_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  TensorImpl* pw = parent(node, 1);
  const std::int64_t n = px->shape[0], k = px->shape[1], m = pw->shape[1];
  if (px->requires_grad) {
    px->ensure_grad();
    gemm_a_bt(node.grad.data(), pw->data.data(), px->grad.data(), n, m, k);
  }
  if (pw->requires_grad) {
    pw->ensure_grad();
    note_gemm(n, k, m);
    K.gemm_at_b(px->data.data(), node.grad.data(), pw->grad.data(), n, k, m);
  }
  if (node.parents.size() > 2) {
    TensorImpl* pbias = parent(node, 2);
    if (pbias->requires_grad) {
      pbias->ensure_grad();
      K.acc_col_sum(pbias->grad.data(), node.grad.data(), n, m);
    }
  }
}

void relu_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_relu_mask(pa->grad.data(), node.grad.data(), pa->data.data(),
                               node.grad.size());
}

/// In-place relu: the node owns the (transformed) buffer, so the sign of
/// the *output* stands in for the input sign (relu(x) > 0 iff x > 0).
void relu_inplace_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_relu_mask(pa->grad.data(), node.grad.data(), node.data.data(),
                               node.grad.size());
}

void leaky_relu_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_leaky_mask(pa->grad.data(), node.grad.data(), pa->data.data(),
                                node.op_f0, node.grad.size());
}

void tanh_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  // node.data is the node's own output; no saved copy.
  simd::active().acc_tanh_bw(pa->grad.data(), node.grad.data(), node.data.data(),
                             node.grad.size());
}

void sigmoid_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_sigmoid_bw(pa->grad.data(), node.grad.data(), node.data.data(),
                                node.grad.size());
}

void square_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_square_bw(pa->grad.data(), node.grad.data(), pa->data.data(),
                               node.grad.size());
}

void sum_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  simd::active().acc_scalar(pa->grad.data(), node.grad[0], pa->grad.size());
}

void row_sum_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  const std::int64_t n = pa->shape[0], c = pa->shape[1];
  for (std::int64_t i = 0; i < n; ++i) {
    K.acc_scalar(pa->grad.data() + i * c, node.grad[i], static_cast<size_t>(c));
  }
}

void sqrt_bw(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  if (!pa->requires_grad) return;
  pa->ensure_grad();
  for (size_t i = 0; i < node.grad.size(); ++i) {
    const float y = std::max(node.data[i], 1e-8f);
    pa->grad[i] += node.grad[i] * 0.5f / y;
  }
}

void gather_rows_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t c = node.shape[1];
  const auto& id = node.ctx->ibuf;
  for (size_t i = 0; i < id.size(); ++i) {
    float* dst = px->grad.data() + id[i] * c;
    const float* src = node.grad.data() + static_cast<std::int64_t>(i) * c;
    K.acc_add(dst, src, static_cast<size_t>(c));
  }
}

void scatter_rows_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t c = node.shape[1];
  const auto& id = node.ctx->ibuf;
  for (size_t i = 0; i < id.size(); ++i) {
    float* dst = px->grad.data() + static_cast<std::int64_t>(i) * c;
    const float* src = node.grad.data() + id[i] * c;
    K.acc_add(dst, src, static_cast<size_t>(c));
  }
}

void weighted_gather_rows_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t c = node.shape[1];
  const std::int64_t k_per_row = node.op_i0;
  const auto& id = node.ctx->ibuf;
  const auto& w = node.ctx->fbuf;
  const std::int64_t nout = static_cast<std::int64_t>(id.size()) / k_per_row;
  for (std::int64_t i = 0; i < nout; ++i) {
    const float* src = node.grad.data() + i * c;
    for (std::int64_t k = 0; k < k_per_row; ++k) {
      float* dst = px->grad.data() + id[static_cast<size_t>(i * k_per_row + k)] * c;
      const float wk = w[static_cast<size_t>(i * k_per_row + k)];
      K.acc_axpy(dst, src, wk, static_cast<size_t>(c));
    }
  }
}

void repeat_rows_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t k = node.op_i0;
  const std::int64_t n = px->shape[0], c = px->shape[1];
  for (std::int64_t i = 0; i < n; ++i) {
    float* dst = px->grad.data() + i * c;
    for (std::int64_t r = 0; r < k; ++r) {
      const float* src = node.grad.data() + (i * k + r) * c;
      K.acc_add(dst, src, static_cast<size_t>(c));
    }
  }
}

void concat_cols_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const std::int64_t n = node.shape[0];
  const std::int64_t ca = pa->shape[1], cb = pb->shape[1];
  if (pa->requires_grad) {
    pa->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      K.acc_add(pa->grad.data() + i * ca, node.grad.data() + i * (ca + cb),
                static_cast<size_t>(ca));
    }
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      K.acc_add(pb->grad.data() + i * cb, node.grad.data() + i * (ca + cb) + ca,
                static_cast<size_t>(cb));
    }
  }
}

void slice_cols_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t c0 = node.op_i0;
  const std::int64_t n = node.shape[0], w = node.shape[1], c = px->shape[1];
  for (std::int64_t i = 0; i < n; ++i) {
    K.acc_add(px->grad.data() + i * c + c0, node.grad.data() + i * w,
              static_cast<size_t>(w));
  }
}

void scatter_add_cols_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* pbase = parent(node, 0);
  TensorImpl* pdelta = parent(node, 1);
  const std::int64_t col0 = node.op_i0;
  const std::int64_t n = node.shape[0], c = node.shape[1], d = pdelta->shape[1];
  if (pbase->requires_grad) {
    pbase->ensure_grad();
    K.acc_add(pbase->grad.data(), node.grad.data(), node.grad.size());
  }
  if (pdelta->requires_grad) {
    pdelta->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      K.acc_add(pdelta->grad.data() + i * d, node.grad.data() + i * c + col0,
                static_cast<size_t>(d));
    }
  }
}

void segment_max_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t k = node.op_i0;
  const std::int64_t n = node.shape[0], c = node.shape[1];
  const auto& arg = node.ctx->ibuf;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      const std::int64_t r = arg[static_cast<size_t>(i * c + j)];
      px->grad[(i * k + r) * c + j] += node.grad[i * c + j];
    }
  }
}

void segment_sum_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t k = node.op_i0;
  const std::int64_t n = node.shape[0], c = node.shape[1];
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = node.grad.data() + i * c;
    for (std::int64_t r = 0; r < k; ++r) {
      K.acc_add(px->grad.data() + (i * k + r) * c, src, static_cast<size_t>(c));
    }
  }
}

void segment_softmax_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t k = node.op_i0;
  const std::int64_t n = px->shape[0] / k, c = px->shape[1];
  FloatBuffer scratch = pool::acquire(static_cast<size_t>(c));
  simd::active().acc_segment_softmax_bw(px->grad.data(), node.grad.data(),
                                        node.data.data(), scratch.data(), n, k, c);
  pool::release(std::move(scratch));
}

void log_softmax_rows_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t n = node.shape[0], c = node.shape[1];
  simd::active().acc_log_softmax_bw(px->grad.data(), node.grad.data(),
                                    node.data.data(), n, c);
}

void nll_loss_masked_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t n = px->shape[0], c = px->shape[1];
  const auto& labels = node.ctx->labels;
  const auto& mask = node.ctx->mask;
  const float g = node.grad[0] * node.op_f0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[static_cast<size_t>(i)]) continue;
    px->grad[i * c + labels[static_cast<size_t>(i)]] -= g;
  }
}

void hinge_margin_loss_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t n = px->shape[0], c = px->shape[1];
  const auto& labels = node.ctx->labels;
  const auto& best_j = node.ctx->ibuf;
  const float g = node.grad[0];
  const float sy = node.op_flag ? -1.0f : 1.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t bj = best_j[static_cast<size_t>(i)];
    if (bj < 0) continue;  // hinge inactive or masked out
    px->grad[i * c + labels[static_cast<size_t>(i)]] += g * sy;
    px->grad[i * c + bj] -= g * sy;
  }
}

void smoothness_penalty_bw(TensorImpl& node) {
  TensorImpl* px_node = parent(node, 0);
  if (!px_node->requires_grad) return;
  px_node->ensure_grad();
  constexpr float kEps = 1e-8f;
  const std::int64_t alpha = node.op_i0;
  const std::int64_t n = px_node->shape[0], c = px_node->shape[1];
  const auto& idx = node.ctx->ibuf;
  const float g = node.grad[0];
  const float* px = px_node->data.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < alpha; ++k) {
      const std::int64_t j = idx[static_cast<size_t>(i * alpha + k)];
      float d2 = 0.0f;
      for (std::int64_t t = 0; t < c; ++t) {
        const float d = px[i * c + t] - px[j * c + t];
        d2 += d * d;
      }
      const float dist = std::sqrt(std::max(d2, kEps * kEps));
      for (std::int64_t t = 0; t < c; ++t) {
        const float u = (px[i * c + t] - px[j * c + t]) / dist;
        px_node->grad[i * c + t] += g * u;
        px_node->grad[j * c + t] -= g * u;
      }
    }
  }
}

void batch_norm_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  TensorImpl* pg = parent(node, 1);
  TensorImpl* pb = parent(node, 2);
  const std::int64_t n = node.shape[0], c = node.shape[1];
  // ctx.fbuf layout: [xhat (n*c) | inv_std (c)].
  const float* xhat = node.ctx->fbuf.data();
  const float* inv_std = xhat + n * c;
  const float* gamma = pg->data.data();
  if (pg->requires_grad) {
    pg->ensure_grad();
    K.acc_col_sum_mul(pg->grad.data(), node.grad.data(), xhat, n, c);
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    K.acc_col_sum(pb->grad.data(), node.grad.data(), n, c);
  }
  if (!px->requires_grad) return;
  px->ensure_grad();
  if (!node.op_flag) {  // eval mode
    K.acc_scaled_rowvec(px->grad.data(), node.grad.data(), gamma, inv_std, n, c);
    return;
  }
  // Training mode: gradient through the batch statistics.
  const float invn = 1.0f / static_cast<float>(n);
  for (std::int64_t j = 0; j < c; ++j) {
    float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
    for (std::int64_t i = 0; i < n; ++i) {
      const float dyg = node.grad[i * c + j] * gamma[j];
      sum_dy += dyg;
      sum_dy_xhat += dyg * xhat[i * c + j];
    }
    for (std::int64_t i = 0; i < n; ++i) {
      const float dyg = node.grad[i * c + j] * gamma[j];
      px->grad[i * c + j] +=
          inv_std[j] * (dyg - invn * sum_dy - xhat[i * c + j] * invn * sum_dy_xhat);
    }
  }
}

void dropout_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  simd::active().acc_mul(px->grad.data(), node.grad.data(), node.ctx->fbuf.data(),
                         node.grad.size());
}

// -- Fused-op backward rules -------------------------------------------------

/// Mirrors the unfused relu(bn_eval(x)) chain: relu masks first, then the
/// eval-mode affine pulls dy through gamma * inv_std in the same
/// multiplication order. ctx.fbuf layout: [mean (c) | inv_std (c)].
void bn_relu_eval_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  TensorImpl* pg = parent(node, 1);
  TensorImpl* pb = parent(node, 2);
  const std::int64_t n = node.shape[0], c = node.shape[1];
  const float* mean = node.ctx->fbuf.data();
  const float* inv_std = mean + c;
  float* dgamma = nullptr;
  float* dbeta = nullptr;
  float* dx = nullptr;
  if (pg->requires_grad) {
    pg->ensure_grad();
    dgamma = pg->grad.data();
  }
  if (pb->requires_grad) {
    pb->ensure_grad();
    dbeta = pb->grad.data();
  }
  if (px->requires_grad) {
    px->ensure_grad();
    dx = px->grad.data();
  }
  simd::active().acc_bn_relu_eval_bw(dx, dgamma, dbeta, node.grad.data(),
                                     node.data.data(), px->data.data(),
                                     pg->data.data(), mean, inv_std, n, c);
}

/// Mirrors concat(x_i, x_j - x_i) built from gather/repeat/sub/concat:
/// the gather scatter runs first, then the per-center accumulation, in
/// the same order the unfused chain's reverse-topo walk produces.
void edge_features_bw(TensorImpl& node) {
  TensorImpl* ph = parent(node, 0);
  if (!ph->requires_grad) return;
  ph->ensure_grad();
  simd::active().acc_edge_features_bw(ph->grad.data(), node.grad.data(),
                                      node.ctx->ibuf.data(), ph->shape[0],
                                      node.op_i0, ph->shape[1]);
}

/// Mirrors sub(gather(x, idx_a), repeat(gather(x, idx_b), k)): the
/// repeat-then-gather path accumulates per-group sums first, then the
/// direct gather scatters, matching the unfused reverse-topo order.
void gather_sub_rows_bw(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  if (!px->requires_grad) return;
  px->ensure_grad();
  const std::int64_t k = node.op_i0;
  const std::int64_t c = node.shape[1];
  const std::int64_t nout = node.shape[0] / k;
  const auto& idx = node.ctx->ibuf;  // [idx_a (nout*k) | idx_b (nout)]
  const std::int64_t* idx_a = idx.data();
  const std::int64_t* idx_b = idx.data() + nout * k;
  const float* dy = node.grad.data();
  float* dx = px->grad.data();
  const simd::Kernels& K = simd::active();
  FloatBuffer acc = pool::acquire(static_cast<size_t>(c));
  for (std::int64_t i = 0; i < nout; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (std::int64_t r = 0; r < k; ++r) {
      K.acc_axpy(acc.data(), dy + (i * k + r) * c, -1.0f, static_cast<size_t>(c));
    }
    K.acc_add(dx + idx_b[i] * c, acc.data(), static_cast<size_t>(c));
  }
  for (std::int64_t r = 0; r < nout * k; ++r) {
    K.acc_add(dx + idx_a[r] * c, dy + r * c, static_cast<size_t>(c));
  }
  pool::release(std::move(acc));
}

/// Mirrors concat(concat(a, b), concat(c, d)): the unfused reverse-topo
/// walk splits the right pair before the left one.
void concat_cols4_bw(TensorImpl& node) {
  const std::int64_t n = node.shape[0];
  std::int64_t width[4];
  std::int64_t offset[4];
  std::int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    width[s] = parent(node, static_cast<size_t>(s))->shape[1];
    offset[s] = total;
    total += width[s];
  }
  const simd::Kernels& K = simd::active();
  for (int s : {2, 3, 0, 1}) {
    TensorImpl* p = parent(node, static_cast<size_t>(s));
    if (!p->requires_grad) continue;
    p->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      K.acc_add(p->grad.data() + i * width[s], node.grad.data() + i * total + offset[s],
                static_cast<size_t>(width[s]));
    }
  }
}

/// Mirrors mul(x, matmul(col, ones_row)): dx first (the mul backward),
/// then the column gradient as an ascending-j dot per row (the matmul
/// backward's packed accumulation order).
void mul_rows_bw(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  TensorImpl* pc = parent(node, 1);
  const std::int64_t n = node.shape[0], c = node.shape[1];
  const float* col = pc->data.data();
  if (px->requires_grad) {
    px->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      K.acc_axpy(px->grad.data() + i * c, node.grad.data() + i * c, col[i],
                 static_cast<size_t>(c));
    }
  }
  if (pc->requires_grad) {
    pc->ensure_grad();
    const float* xv = px->data.data();
    // Sequential ascending-j dot, NOT the 8-lane kernel: mul_rows promises
    // bitwise identity with mul(x, matmul(col, ones_row)), whose column
    // gradient runs through the GEMM chain (one mul+add per j, ascending).
    for (std::int64_t i = 0; i < n; ++i) {
      float acc = 0.0f;
      const float* src = node.grad.data() + i * c;
      const float* xr = xv + i * c;
      for (std::int64_t j = 0; j < c; ++j) acc += src[j] * xr[j];
      pc->grad[i] += acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Forward replay rules (compiled step plans, see plan.h). Each rewrites the
// node's value buffer — and any value-dependent saved state such as argmax
// indices — in place from the parents' current data, using exactly the
// kernel and accumulation order of the eager builder above it, so a replayed
// forward is bit-identical to an eager one. Structural state (shapes,
// indices, masks, scalar parameters) is fixed at capture time and only read
// here; bounds were validated during capture, so replays skip the checks.
// ---------------------------------------------------------------------------

void add_fwd(TensorImpl& node) {
  simd::active().ew_add(parent(node, 0)->data.data(), parent(node, 1)->data.data(),
                        node.data.data(), node.data.size());
}

void sub_fwd(TensorImpl& node) {
  simd::active().ew_sub(parent(node, 0)->data.data(), parent(node, 1)->data.data(),
                        node.data.data(), node.data.size());
}

void mul_fwd(TensorImpl& node) {
  simd::active().ew_mul(parent(node, 0)->data.data(), parent(node, 1)->data.data(),
                        node.data.data(), node.data.size());
}

void scale_fwd(TensorImpl& node) {
  simd::active().ew_scale(parent(node, 0)->data.data(), node.op_f0, node.data.data(),
                          node.data.size());
}

void add_scalar_fwd(TensorImpl& node) {
  simd::active().ew_add_scalar(parent(node, 0)->data.data(), node.op_f0,
                               node.data.data(), node.data.size());
}

void add_rowvec_fwd(TensorImpl& node) {
  simd::active().add_rowvec(parent(node, 0)->data.data(), parent(node, 1)->data.data(),
                            node.data.data(), node.shape[0], node.shape[1]);
}

void matmul_fwd(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const std::int64_t n = pa->shape[0], k = pa->shape[1], m = pb->shape[1];
  note_gemm(n, k, m);
  simd::active().gemm_nn_init(pa->data.data(), pb->data.data(), node.data.data(), n, k, m);
}

void linear_fwd(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  TensorImpl* px = parent(node, 0);
  TensorImpl* pw = parent(node, 1);
  const std::int64_t n = px->shape[0], k = px->shape[1], m = pw->shape[1];
  note_gemm(n, k, m);
  K.gemm_nn_init(px->data.data(), pw->data.data(), node.data.data(), n, k, m);
  if (node.parents.size() > 2) {
    K.add_rowvec(node.data.data(), parent(node, 2)->data.data(), node.data.data(), n, m);
  }
}

void relu_fwd(TensorImpl& node) {
  simd::active().ew_relu(parent(node, 0)->data.data(), node.data.data(),
                         node.data.size());
}

void leaky_relu_fwd(TensorImpl& node) {
  simd::active().ew_leaky_relu(parent(node, 0)->data.data(), node.op_f0,
                               node.data.data(), node.data.size());
}

void tanh_fwd(TensorImpl& node) {
  const float* pa = parent(node, 0)->data.data();
  for (size_t i = 0; i < node.data.size(); ++i) node.data[i] = std::tanh(pa[i]);
}

void sigmoid_fwd(TensorImpl& node) {
  const float* pa = parent(node, 0)->data.data();
  for (size_t i = 0; i < node.data.size(); ++i) {
    node.data[i] = 1.0f / (1.0f + std::exp(-pa[i]));
  }
}

void square_fwd(TensorImpl& node) {
  simd::active().ew_square(parent(node, 0)->data.data(), node.data.data(),
                           node.data.size());
}

void sum_fwd(TensorImpl& node) {
  const FloatBuffer& a = parent(node, 0)->data;
  node.data[0] = static_cast<float>(simd::active().reduce_sum_f64(a.data(), a.size()));
}

void row_sum_fwd(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  simd::active().row_sum(pa->data.data(), node.data.data(), pa->shape[0], pa->shape[1]);
}

void sqrt_fwd(TensorImpl& node) {
  const float* pa = parent(node, 0)->data.data();
  const float eps = node.op_f0;
  for (size_t i = 0; i < node.data.size(); ++i) {
    node.data[i] = std::sqrt(std::max(pa[i] + eps, 0.0f));
  }
}

void gather_rows_fwd(TensorImpl& node) {
  const float* px = parent(node, 0)->data.data();
  const std::int64_t c = node.shape[1];
  const auto& idx = node.ctx->ibuf;
  for (size_t i = 0; i < idx.size(); ++i) {
    std::copy_n(px + idx[i] * c, c, node.data.data() + static_cast<std::int64_t>(i) * c);
  }
}

void scatter_rows_fwd(TensorImpl& node) {
  // ctx.fbuf holds the fill template saved at capture time.
  std::copy(node.ctx->fbuf.begin(), node.ctx->fbuf.end(), node.data.begin());
  const float* pr = parent(node, 0)->data.data();
  const std::int64_t c = node.shape[1];
  const auto& idx = node.ctx->ibuf;
  for (size_t i = 0; i < idx.size(); ++i) {
    std::copy_n(pr + static_cast<std::int64_t>(i) * c, c, node.data.data() + idx[i] * c);
  }
}

void weighted_gather_rows_fwd(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  const float* px = parent(node, 0)->data.data();
  const std::int64_t c = node.shape[1];
  const std::int64_t k_per_row = node.op_i0;
  const auto& idx = node.ctx->ibuf;
  const auto& w = node.ctx->fbuf;
  const std::int64_t nout = static_cast<std::int64_t>(idx.size()) / k_per_row;
  std::fill(node.data.begin(), node.data.end(), 0.0f);
  for (std::int64_t i = 0; i < nout; ++i) {
    float* dst = node.data.data() + i * c;
    for (std::int64_t k = 0; k < k_per_row; ++k) {
      K.acc_axpy(dst, px + idx[static_cast<size_t>(i * k_per_row + k)] * c,
                 w[static_cast<size_t>(i * k_per_row + k)], static_cast<size_t>(c));
    }
  }
}

void repeat_rows_fwd(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  const std::int64_t k = node.op_i0;
  const std::int64_t n = px->shape[0], c = px->shape[1];
  const float* src = px->data.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < k; ++r) {
      std::copy_n(src + i * c, c, node.data.data() + (i * k + r) * c);
    }
  }
}

void concat_cols_fwd(TensorImpl& node) {
  TensorImpl* pa = parent(node, 0);
  TensorImpl* pb = parent(node, 1);
  const std::int64_t n = node.shape[0];
  const std::int64_t ca = pa->shape[1], cb = pb->shape[1];
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(pa->data.data() + i * ca, ca, node.data.data() + i * (ca + cb));
    std::copy_n(pb->data.data() + i * cb, cb, node.data.data() + i * (ca + cb) + ca);
  }
}

void concat_cols4_fwd(TensorImpl& node) {
  const std::int64_t n = node.shape[0];
  const std::int64_t total = node.shape[1];
  std::int64_t offset = 0;
  for (size_t s = 0; s < 4; ++s) {
    TensorImpl* p = parent(node, s);
    const std::int64_t w = p->shape[1];
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy_n(p->data.data() + i * w, w, node.data.data() + i * total + offset);
    }
    offset += w;
  }
}

void slice_cols_fwd(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  const std::int64_t c0 = node.op_i0;
  const std::int64_t n = node.shape[0], w = node.shape[1], c = px->shape[1];
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(px->data.data() + i * c + c0, w, node.data.data() + i * w);
  }
}

void scatter_add_cols_fwd(TensorImpl& node) {
  TensorImpl* pbase = parent(node, 0);
  TensorImpl* pdelta = parent(node, 1);
  const std::int64_t col0 = node.op_i0;
  const std::int64_t n = node.shape[0], c = node.shape[1], d = pdelta->shape[1];
  std::copy_n(pbase->data.data(), n * c, node.data.data());
  const float* pd = pdelta->data.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) node.data[i * c + col0 + j] += pd[i * d + j];
  }
}

void edge_features_fwd(TensorImpl& node) {
  TensorImpl* ph = parent(node, 0);
  simd::active().edge_features(ph->data.data(), node.ctx->ibuf.data(),
                               node.data.data(), ph->shape[0], node.op_i0,
                               ph->shape[1]);
}

void gather_sub_rows_fwd(TensorImpl& node) {
  TensorImpl* px_node = parent(node, 0);
  const std::int64_t k = node.op_i0;
  const std::int64_t c = node.shape[1];
  const std::int64_t nout = node.shape[0] / k;
  const auto& idx = node.ctx->ibuf;  // [idx_a (nout*k) | idx_b (nout)]
  const std::int64_t* idx_a = idx.data();
  const std::int64_t* idx_b = idx.data() + nout * k;
  const float* px = px_node->data.data();
  for (std::int64_t i = 0; i < nout; ++i) {
    const float* xb = px + idx_b[i] * c;
    for (std::int64_t r = 0; r < k; ++r) {
      const float* xa = px + idx_a[i * k + r] * c;
      float* row = node.data.data() + (i * k + r) * c;
      for (std::int64_t t = 0; t < c; ++t) row[t] = xa[t] - xb[t];
    }
  }
}

void mul_rows_fwd(TensorImpl& node) {
  simd::active().mul_rows(parent(node, 0)->data.data(), parent(node, 1)->data.data(),
                          node.data.data(), node.shape[0], node.shape[1]);
}

void segment_max_fwd(TensorImpl& node) {
  // Value-dependent saved state: the argmax indices backward reads are
  // rewritten alongside the values.
  const float* px = parent(node, 0)->data.data();
  const std::int64_t k = node.op_i0;
  const std::int64_t n = node.shape[0], c = node.shape[1];
  auto& arg = node.ctx->ibuf;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      float best = px[(i * k) * c + j];
      std::int64_t best_r = 0;
      for (std::int64_t r = 1; r < k; ++r) {
        const float v = px[(i * k + r) * c + j];
        if (v > best) {
          best = v;
          best_r = r;
        }
      }
      node.data[i * c + j] = best;
      arg[static_cast<size_t>(i * c + j)] = best_r;
    }
  }
}

void segment_sum_fwd(TensorImpl& node) {
  const simd::Kernels& K = simd::active();
  const float* px = parent(node, 0)->data.data();
  const std::int64_t k = node.op_i0;
  const std::int64_t n = node.shape[0], c = node.shape[1];
  std::fill(node.data.begin(), node.data.end(), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < k; ++r) {
      K.acc_add(node.data.data() + i * c, px + (i * k + r) * c, static_cast<size_t>(c));
    }
  }
}

void segment_softmax_fwd(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  const std::int64_t k = node.op_i0;
  const std::int64_t n = px->shape[0] / k, c = px->shape[1];
  FloatBuffer scratch = pool::acquire(static_cast<size_t>(2 * c));
  simd::active().segment_softmax(px->data.data(), node.data.data(), scratch.data(), n,
                                 k, c);
  pool::release(std::move(scratch));
}

void log_softmax_rows_fwd(TensorImpl& node) {
  simd::active().log_softmax_rows(parent(node, 0)->data.data(), node.data.data(),
                                  node.shape[0], node.shape[1]);
}

void nll_loss_masked_fwd(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  const std::int64_t n = px->shape[0], c = px->shape[1];
  const auto& labels = node.ctx->labels;
  const auto& mask = node.ctx->mask;
  const float* p = px->data.data();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[static_cast<size_t>(i)]) continue;
    acc -= p[i * c + labels[static_cast<size_t>(i)]];
  }
  node.data[0] = static_cast<float>(acc * node.op_f0);
}

void hinge_margin_loss_fwd(TensorImpl& node) {
  TensorImpl* px = parent(node, 0);
  const std::int64_t n = px->shape[0], c = px->shape[1];
  const auto& labels = node.ctx->labels;
  const auto& mask = node.ctx->mask;
  auto& best_j = node.ctx->ibuf;  // value-dependent: rewritten per replay
  const bool targeted = node.op_flag;
  const float* z = px->data.data();
  double total = 0.0;
  std::fill(best_j.begin(), best_j.end(), static_cast<std::int64_t>(-1));
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[static_cast<size_t>(i)]) continue;
    const int y = labels[static_cast<size_t>(i)];
    float best = -std::numeric_limits<float>::infinity();
    std::int64_t bj = -1;
    for (std::int64_t j = 0; j < c; ++j) {
      if (j == y) continue;
      if (z[i * c + j] > best) {
        best = z[i * c + j];
        bj = j;
      }
    }
    const float margin = targeted ? best - z[i * c + y] : z[i * c + y] - best;
    if (margin > 0.0f) {
      total += margin;
      best_j[static_cast<size_t>(i)] = bj;
    }
  }
  node.data[0] = static_cast<float>(total);
}

void smoothness_penalty_fwd(TensorImpl& node) {
  TensorImpl* px_node = parent(node, 0);
  const std::int64_t alpha = node.op_i0;
  const std::int64_t n = px_node->shape[0], c = px_node->shape[1];
  const auto& idx = node.ctx->ibuf;
  const float* px = px_node->data.data();
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < alpha; ++k) {
      const std::int64_t j = idx[static_cast<size_t>(i * alpha + k)];
      double d2 = 0.0;
      for (std::int64_t t = 0; t < c; ++t) {
        const double d = px[i * c + t] - px[j * c + t];
        d2 += d * d;
      }
      total += std::sqrt(d2);
    }
  }
  node.data[0] = static_cast<float>(total);
}

void bn_relu_eval_fwd(TensorImpl& node) {
  // Eval-mode running stats are frozen; the [mean | inv_std] pair cached in
  // ctx.fbuf at capture time stays valid across replays.
  const std::int64_t c = node.shape[1];
  const float* mean = node.ctx->fbuf.data();
  const float* inv_std = mean + c;
  simd::active().bn_relu_eval(parent(node, 0)->data.data(),
                              parent(node, 1)->data.data(),
                              parent(node, 2)->data.data(), mean, inv_std,
                              node.data.data(), node.shape[0], c);
}

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise / scalar ops
// ---------------------------------------------------------------------------

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* name) {
  check(a.defined() && b.defined(), std::string(name) + ": undefined input");
  check(a.shape() == b.shape(), std::string(name) + ": shape mismatch " +
                                    shape_str(a.shape()) + " vs " + shape_str(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_add(a.data(), b.data(), out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl(), b.impl()}, add_bw,
                   {.fwd = add_fwd});
}

Tensor add_inplace(Tensor a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  TensorImplPtr ia = a.impl();
  a = Tensor();  // drop the caller-moved handle so uniqueness is observable
  if (plan::detail::recording() || ia.use_count() != 1 || !ia->grad.empty() ||
      ia->backward_reads_output) {
    // Shared storage (another handle or graph edge), a live gradient, or
    // a node whose own backward needs its output values: fall back to the
    // allocating op. A plan capture also forces the fallback — a stolen
    // operand buffer could not be recomputed at replay — and acc_add(a += b)
    // is bit-identical to ew_add per element, so capture changes no bytes.
    return add(Tensor(std::move(ia)), b);
  }
  FloatBuffer out = std::move(ia->data);
  simd::active().acc_add(out.data(), b.data(), out.size());
  Shape shape = ia->shape;  // before ia moves into the parents list
  return make_node(std::move(shape), std::move(out), {std::move(ia), b.impl()}, add_bw);
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_sub(a.data(), b.data(), out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl(), b.impl()}, sub_bw,
                   {.fwd = sub_fwd});
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_mul(a.data(), b.data(), out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl(), b.impl()}, mul_bw,
                   {.fwd = mul_fwd});
}

Tensor scale(const Tensor& a, float s) {
  check(a.defined(), "scale: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_scale(a.data(), s, out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl()}, scale_bw,
                   {.f0 = s, .fwd = scale_fwd});
}

Tensor add_scalar(const Tensor& a, float s) {
  check(a.defined(), "add_scalar: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_add_scalar(a.data(), s, out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl()}, add_scalar_bw,
                   {.f0 = s, .fwd = add_scalar_fwd});
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor add_rowvec(const Tensor& x, const Tensor& bias) {
  check_matrix(x, "add_rowvec");
  check(bias.defined() && bias.numel() == x.dim(1),
        "add_rowvec: bias size must equal column count");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  simd::active().add_rowvec(x.data(), bias.data(), out.data(), n, c);
  return make_node(x.shape(), std::move(out), {x.impl(), bias.impl()}, add_rowvec_bw,
                   {.fwd = add_rowvec_fwd});
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul");
  check_matrix(b, "matmul");
  check(a.dim(1) == b.dim(0), "matmul: inner dimensions differ: " + shape_str(a.shape()) +
                                  " x " + shape_str(b.shape()));
  const std::int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  // gemm_nn_init overwrites the buffer (chains start at 0), so the
  // acquire skips the zero-fill an accumulating kernel would need.
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * m));
  note_gemm(n, k, m);
  simd::active().gemm_nn_init(a.data(), b.data(), out.data(), n, k, m);
  return make_node({n, m}, std::move(out), {a.impl(), b.impl()}, matmul_bw,
                   {.fwd = matmul_fwd});
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  check_matrix(x, "linear");
  check_matrix(w, "linear");
  check(x.dim(1) == w.dim(0), "linear: inner dimensions differ: " + shape_str(x.shape()) +
                                  " x " + shape_str(w.shape()));
  const std::int64_t n = x.dim(0), k = x.dim(1), m = w.dim(1);
  const simd::Kernels& K = simd::active();
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * m));
  note_gemm(n, k, m);
  K.gemm_nn_init(x.data(), w.data(), out.data(), n, k, m);
  std::vector<TensorImplPtr> parents{x.impl(), w.impl()};
  if (bias.defined()) {
    check(bias.numel() == m, "linear: bias size must equal output width");
    K.add_rowvec(out.data(), bias.data(), out.data(), n, m);  // in-place epilogue
    parents.push_back(bias.impl());
  }
  return make_node({n, m}, std::move(out), std::move(parents), linear_bw,
                   {.fwd = linear_fwd});
}

// ---------------------------------------------------------------------------
// Nonlinearities
// ---------------------------------------------------------------------------

Tensor relu(const Tensor& a) {
  check(a.defined(), "relu: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_relu(a.data(), out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl()}, relu_bw, {.fwd = relu_fwd});
}

Tensor relu_inplace(Tensor a) {
  check(a.defined(), "relu_inplace: undefined input");
  TensorImplPtr ia = a.impl();
  a = Tensor();
  if (plan::detail::recording() || ia.use_count() != 1 || !ia->grad.empty() ||
      ia->backward_reads_output) {
    // See add_inplace: capture forces the allocating fallback. The output
    // values are identical, and so are the gradients — relu_bw masks by the
    // input sign, relu_inplace_bw by the output sign, and relu(x) > 0 iff
    // x > 0.
    return relu(Tensor(std::move(ia)));
  }
  FloatBuffer out = std::move(ia->data);
  simd::active().ew_relu(out.data(), out.data(), out.size());
  Shape shape = ia->shape;  // before ia moves into the parents list
  return make_node(std::move(shape), std::move(out), {std::move(ia)}, relu_inplace_bw,
                   {.needs_output = true});
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  check(a.defined(), "leaky_relu: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_leaky_relu(a.data(), negative_slope, out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl()}, leaky_relu_bw,
                   {.f0 = negative_slope, .fwd = leaky_relu_fwd});
}

Tensor tanh_op(const Tensor& a) {
  check(a.defined(), "tanh: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(pa[i]);
  return make_node(a.shape(), std::move(out), {a.impl()}, tanh_bw,
                   {.needs_output = true, .fwd = tanh_fwd});
}

Tensor sigmoid(const Tensor& a) {
  check(a.defined(), "sigmoid: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = 1.0f / (1.0f + std::exp(-pa[i]));
  return make_node(a.shape(), std::move(out), {a.impl()}, sigmoid_bw,
                   {.needs_output = true, .fwd = sigmoid_fwd});
}

Tensor square(const Tensor& a) {
  check(a.defined(), "square: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  simd::active().ew_square(a.data(), out.data(), out.size());
  return make_node(a.shape(), std::move(out), {a.impl()}, square_bw,
                   {.fwd = square_fwd});
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor sum(const Tensor& a) {
  check(a.defined(), "sum: undefined input");
  // 8-lane double accumulation: deterministic across dispatch paths and
  // still (near-)double precision like the previous sequential chain.
  const double acc =
      simd::active().reduce_sum_f64(a.data(), static_cast<size_t>(a.numel()));
  FloatBuffer out = pool::acquire(1);
  out[0] = static_cast<float>(acc);
  return make_node({1}, std::move(out), {a.impl()}, sum_bw, {.fwd = sum_fwd});
}

Tensor mean(const Tensor& a) {
  check(a.defined() && a.numel() > 0, "mean: undefined or empty input");
  return scale(sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor row_sum(const Tensor& a) {
  check_matrix(a, "row_sum");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n));
  simd::active().row_sum(a.data(), out.data(), n, c);
  return make_node({n, 1}, std::move(out), {a.impl()}, row_sum_bw,
                   {.fwd = row_sum_fwd});
}

Tensor sqrt_op(const Tensor& a, float eps) {
  check(a.defined(), "sqrt_op: undefined input");
  FloatBuffer out = pool::acquire(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::sqrt(std::max(pa[i] + eps, 0.0f));
  return make_node(a.shape(), std::move(out), {a.impl()}, sqrt_bw,
                   {.f0 = eps, .needs_output = true, .fwd = sqrt_fwd});
}

// ---------------------------------------------------------------------------
// Structure / indexing
// ---------------------------------------------------------------------------

Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& idx) {
  check_matrix(x, "gather_rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const std::int64_t m = static_cast<std::int64_t>(idx.size());
  FloatBuffer out = pool::acquire(static_cast<size_t>(m * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < m; ++i) {
    if (idx[i] < 0 || idx[i] >= n) tensor_fail("gather_rows: index out of range");
    std::copy_n(px + idx[i] * c, c, out.data() + i * c);
  }
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf = idx;
  return make_node({m, c}, std::move(out), {x.impl()}, gather_rows_bw,
                   {.ctx = std::move(ctx), .fwd = gather_rows_fwd});
}

Tensor scatter_rows(const Tensor& rows, const std::vector<std::int64_t>& idx,
                    std::int64_t out_rows, const std::vector<float>& fill) {
  check_matrix(rows, "scatter_rows");
  const std::int64_t m = rows.dim(0), c = rows.dim(1);
  check(static_cast<std::int64_t>(idx.size()) == m, "scatter_rows: idx/rows size mismatch");
  check(static_cast<std::int64_t>(fill.size()) == out_rows * c,
        "scatter_rows: fill size must be out_rows * cols");
  FloatBuffer out = pool::acquire(static_cast<size_t>(out_rows * c));
  std::copy(fill.begin(), fill.end(), out.begin());
  const float* pr = rows.data();
  std::vector<std::uint8_t> seen(static_cast<size_t>(out_rows), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t row = idx[static_cast<size_t>(i)];
    if (row < 0 || row >= out_rows) tensor_fail("scatter_rows: index out of range");
    // Duplicates would be last-write-wins forward but double-read in
    // backward — wrong gradients with no error — so the documented
    // distinct-index contract is enforced.
    if (seen[static_cast<size_t>(row)]) tensor_fail("scatter_rows: duplicate index");
    seen[static_cast<size_t>(row)] = 1;
    std::copy_n(pr + i * c, c, out.data() + row * c);
  }
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf = idx;
  // The fill template is part of the op's fixed state: replays restore it
  // before scattering, so it is saved alongside the indices.
  ctx->fbuf = pool::acquire(fill.size());
  std::copy(fill.begin(), fill.end(), ctx->fbuf.begin());
  return make_node({out_rows, c}, std::move(out), {rows.impl()}, scatter_rows_bw,
                   {.ctx = std::move(ctx), .fwd = scatter_rows_fwd});
}

Tensor weighted_gather_rows(const Tensor& x, const std::vector<std::int64_t>& idx,
                            const std::vector<float>& weights, std::int64_t k_per_row) {
  check_matrix(x, "weighted_gather_rows");
  check(idx.size() == weights.size(), "weighted_gather_rows: idx/weights size mismatch");
  check(k_per_row > 0 && idx.size() % static_cast<size_t>(k_per_row) == 0,
        "weighted_gather_rows: idx size must be a multiple of k_per_row");
  const std::int64_t nsrc = x.dim(0), c = x.dim(1);
  const std::int64_t nout = static_cast<std::int64_t>(idx.size()) / k_per_row;
  const simd::Kernels& K = simd::active();
  FloatBuffer out = pool::acquire_zeroed(static_cast<size_t>(nout * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < nout; ++i) {
    float* dst = out.data() + i * c;
    for (std::int64_t k = 0; k < k_per_row; ++k) {
      const std::int64_t src_row = idx[i * k_per_row + k];
      if (src_row < 0 || src_row >= nsrc) {
        tensor_fail("weighted_gather_rows: index out of range");
      }
      K.acc_axpy(dst, px + src_row * c, weights[i * k_per_row + k],
                 static_cast<size_t>(c));
    }
  }
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf = idx;
  ctx->fbuf = pool::acquire(weights.size());
  std::copy(weights.begin(), weights.end(), ctx->fbuf.begin());
  return make_node({nout, c}, std::move(out), {x.impl()}, weighted_gather_rows_bw,
                   {.i0 = k_per_row, .ctx = std::move(ctx),
                    .fwd = weighted_gather_rows_fwd});
}

Tensor repeat_rows(const Tensor& x, std::int64_t k) {
  check_matrix(x, "repeat_rows");
  check(k > 0, "repeat_rows: k must be positive");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * k * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < k; ++r) {
      std::copy_n(px + i * c, c, out.data() + (i * k + r) * c);
    }
  }
  return make_node({n * k, c}, std::move(out), {x.impl()}, repeat_rows_bw,
                   {.i0 = k, .fwd = repeat_rows_fwd});
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  check_matrix(a, "concat_cols");
  check_matrix(b, "concat_cols");
  check(a.dim(0) == b.dim(0), "concat_cols: row counts differ");
  const std::int64_t n = a.dim(0), ca = a.dim(1), cb = b.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * (ca + cb)));
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(pa + i * ca, ca, out.data() + i * (ca + cb));
    std::copy_n(pb + i * cb, cb, out.data() + i * (ca + cb) + ca);
  }
  return make_node({n, ca + cb}, std::move(out), {a.impl(), b.impl()}, concat_cols_bw,
                   {.fwd = concat_cols_fwd});
}

Tensor concat_cols4(const Tensor& a, const Tensor& b, const Tensor& c, const Tensor& d) {
  const Tensor* parts[4] = {&a, &b, &c, &d};
  std::int64_t total = 0;
  for (const Tensor* t : parts) {
    check_matrix(*t, "concat_cols4");
    check(t->dim(0) == a.dim(0), "concat_cols4: row counts differ");
    total += t->dim(1);
  }
  const std::int64_t n = a.dim(0);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * total));
  std::int64_t offset = 0;
  for (const Tensor* t : parts) {
    const std::int64_t w = t->dim(1);
    const float* src = t->data();
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy_n(src + i * w, w, out.data() + i * total + offset);
    }
    offset += w;
  }
  return make_node({n, total}, std::move(out),
                   {a.impl(), b.impl(), c.impl(), d.impl()}, concat_cols4_bw,
                   {.fwd = concat_cols4_fwd});
}

Tensor slice_cols(const Tensor& x, std::int64_t c0, std::int64_t c1) {
  check_matrix(x, "slice_cols");
  check(0 <= c0 && c0 < c1 && c1 <= x.dim(1), "slice_cols: bad column range");
  const std::int64_t n = x.dim(0), c = x.dim(1), w = c1 - c0;
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * w));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) std::copy_n(px + i * c + c0, w, out.data() + i * w);
  return make_node({n, w}, std::move(out), {x.impl()}, slice_cols_bw,
                   {.i0 = c0, .fwd = slice_cols_fwd});
}

Tensor scatter_add_cols(const Tensor& base, const Tensor& delta, std::int64_t col0) {
  check_matrix(base, "scatter_add_cols");
  check_matrix(delta, "scatter_add_cols");
  check(base.dim(0) == delta.dim(0), "scatter_add_cols: row counts differ");
  check(col0 >= 0 && col0 + delta.dim(1) <= base.dim(1),
        "scatter_add_cols: delta columns exceed base");
  const std::int64_t n = base.dim(0), c = base.dim(1), d = delta.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  std::copy_n(base.data(), n * c, out.data());
  const float* pd = delta.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) out[i * c + col0 + j] += pd[i * d + j];
  }
  return make_node(base.shape(), std::move(out), {base.impl(), delta.impl()},
                   scatter_add_cols_bw, {.i0 = col0, .fwd = scatter_add_cols_fwd});
}

// ---------------------------------------------------------------------------
// Fused model-block ops
// ---------------------------------------------------------------------------

Tensor edge_features(const Tensor& h, const std::vector<std::int64_t>& idx,
                     std::int64_t k) {
  check_matrix(h, "edge_features");
  const std::int64_t n = h.dim(0), c = h.dim(1);
  check(k > 0 && static_cast<std::int64_t>(idx.size()) == n * k,
        "edge_features: idx must have N*k entries");
  for (const std::int64_t j : idx) {
    if (j < 0 || j >= n) tensor_fail("edge_features: index out of range");
  }
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * k * 2 * c));
  simd::active().edge_features(h.data(), idx.data(), out.data(), n, k, c);
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf = idx;
  return make_node({n * k, 2 * c}, std::move(out), {h.impl()}, edge_features_bw,
                   {.i0 = k, .ctx = std::move(ctx), .fwd = edge_features_fwd});
}

Tensor gather_sub_rows(const Tensor& x, const std::vector<std::int64_t>& idx_a,
                       const std::vector<std::int64_t>& idx_b, std::int64_t k) {
  check_matrix(x, "gather_sub_rows");
  check(k > 0 && idx_a.size() == idx_b.size() * static_cast<size_t>(k),
        "gather_sub_rows: idx_a must have k entries per idx_b entry");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const std::int64_t nout = static_cast<std::int64_t>(idx_b.size());
  FloatBuffer out = pool::acquire(static_cast<size_t>(nout * k * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < nout; ++i) {
    if (idx_b[static_cast<size_t>(i)] < 0 || idx_b[static_cast<size_t>(i)] >= n) {
      tensor_fail("gather_sub_rows: center index out of range");
    }
    const float* xb = px + idx_b[static_cast<size_t>(i)] * c;
    for (std::int64_t r = 0; r < k; ++r) {
      const std::int64_t a = idx_a[static_cast<size_t>(i * k + r)];
      if (a < 0 || a >= n) tensor_fail("gather_sub_rows: neighbor index out of range");
      const float* xa = px + a * c;
      float* row = out.data() + (i * k + r) * c;
      for (std::int64_t t = 0; t < c; ++t) row[t] = xa[t] - xb[t];
    }
  }
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf.reserve(idx_a.size() + idx_b.size());
  ctx->ibuf.insert(ctx->ibuf.end(), idx_a.begin(), idx_a.end());
  ctx->ibuf.insert(ctx->ibuf.end(), idx_b.begin(), idx_b.end());
  return make_node({nout * k, c}, std::move(out), {x.impl()}, gather_sub_rows_bw,
                   {.i0 = k, .ctx = std::move(ctx), .fwd = gather_sub_rows_fwd});
}

Tensor mul_rows(const Tensor& x, const Tensor& col) {
  check_matrix(x, "mul_rows");
  check(col.defined() && col.rank() == 2 && col.dim(1) == 1 && col.dim(0) == x.dim(0),
        "mul_rows: col must be [N, 1] with matching rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  simd::active().mul_rows(x.data(), col.data(), out.data(), n, c);
  return make_node(x.shape(), std::move(out), {x.impl(), col.impl()}, mul_rows_bw,
                   {.fwd = mul_rows_fwd});
}

// ---------------------------------------------------------------------------
// Segment (neighbor-group) reductions
// ---------------------------------------------------------------------------

namespace {

void check_segments(const Tensor& x, std::int64_t k, const char* name) {
  check_matrix(x, name);
  check(k > 0 && x.dim(0) % k == 0,
        std::string(name) + ": row count must be a multiple of k");
}

}  // namespace

Tensor segment_max(const Tensor& x, std::int64_t k) {
  check_segments(x, k, "segment_max");
  const std::int64_t n = x.dim(0) / k, c = x.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf.resize(static_cast<size_t>(n * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      float best = px[(i * k) * c + j];
      std::int64_t best_r = 0;
      for (std::int64_t r = 1; r < k; ++r) {
        const float v = px[(i * k + r) * c + j];
        if (v > best) {
          best = v;
          best_r = r;
        }
      }
      out[i * c + j] = best;
      ctx->ibuf[static_cast<size_t>(i * c + j)] = best_r;
    }
  }
  return make_node({n, c}, std::move(out), {x.impl()}, segment_max_bw,
                   {.i0 = k, .ctx = std::move(ctx), .fwd = segment_max_fwd});
}

Tensor segment_sum(const Tensor& x, std::int64_t k) {
  check_segments(x, k, "segment_sum");
  const std::int64_t n = x.dim(0) / k, c = x.dim(1);
  const simd::Kernels& K = simd::active();
  FloatBuffer out = pool::acquire_zeroed(static_cast<size_t>(n * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < k; ++r) {
      K.acc_add(out.data() + i * c, px + (i * k + r) * c, static_cast<size_t>(c));
    }
  }
  return make_node({n, c}, std::move(out), {x.impl()}, segment_sum_bw,
                   {.i0 = k, .fwd = segment_sum_fwd});
}

Tensor segment_mean(const Tensor& x, std::int64_t k) {
  return scale(segment_sum(x, k), 1.0f / static_cast<float>(k));
}

Tensor segment_softmax(const Tensor& x, std::int64_t k) {
  check_segments(x, k, "segment_softmax");
  const std::int64_t n = x.dim(0) / k, c = x.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(x.numel()));
  FloatBuffer scratch = pool::acquire(static_cast<size_t>(2 * c));
  simd::active().segment_softmax(x.data(), out.data(), scratch.data(), n, k, c);
  pool::release(std::move(scratch));
  return make_node(x.shape(), std::move(out), {x.impl()}, segment_softmax_bw,
                   {.i0 = k, .needs_output = true, .fwd = segment_softmax_fwd});
}

// ---------------------------------------------------------------------------
// Probabilistic heads and losses
// ---------------------------------------------------------------------------

Tensor log_softmax_rows(const Tensor& x) {
  check_matrix(x, "log_softmax_rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  simd::active().log_softmax_rows(x.data(), out.data(), n, c);
  return make_node(x.shape(), std::move(out), {x.impl()}, log_softmax_rows_bw,
                   {.needs_output = true, .fwd = log_softmax_rows_fwd});
}

Tensor nll_loss_masked(const Tensor& log_probs, const std::vector<int>& labels,
                       const std::vector<std::uint8_t>& mask) {
  check_matrix(log_probs, "nll_loss_masked");
  const std::int64_t n = log_probs.dim(0), c = log_probs.dim(1);
  check(static_cast<std::int64_t>(labels.size()) == n, "nll_loss_masked: labels size");
  check(mask.empty() || static_cast<std::int64_t>(mask.size()) == n,
        "nll_loss_masked: mask size");
  double acc = 0.0;
  std::int64_t count = 0;
  const float* p = log_probs.data();
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[i]) continue;
    check(labels[i] >= 0 && labels[i] < c, "nll_loss_masked: label out of range");
    acc -= p[i * c + labels[i]];
    ++count;
  }
  check(count > 0, "nll_loss_masked: empty selection");
  const float inv = 1.0f / static_cast<float>(count);
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->labels = labels;
  ctx->mask = mask;
  FloatBuffer out = pool::acquire(1);
  out[0] = static_cast<float>(acc * inv);
  return make_node({1}, std::move(out), {log_probs.impl()}, nll_loss_masked_bw,
                   {.f0 = inv, .ctx = std::move(ctx), .fwd = nll_loss_masked_fwd});
}

Tensor hinge_margin_loss(const Tensor& logits, const std::vector<int>& labels,
                         const std::vector<std::uint8_t>& mask, bool targeted) {
  check_matrix(logits, "hinge_margin_loss");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  check(static_cast<std::int64_t>(labels.size()) == n, "hinge_margin_loss: labels size");
  check(mask.empty() || static_cast<std::int64_t>(mask.size()) == n,
        "hinge_margin_loss: mask size");
  check(c >= 2, "hinge_margin_loss: needs at least 2 classes");
  const float* z = logits.data();
  double total = 0.0;
  // For each active row, remember the competing argmax (j != y) and whether
  // the hinge is active, for the backward pass.
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf.assign(static_cast<size_t>(n), -1);
  ctx->labels = labels;
  ctx->mask = mask;  // replays recompute the active set from the fixed mask
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const int y = labels[i];
    check(y >= 0 && y < c, "hinge_margin_loss: label out of range");
    float best = -std::numeric_limits<float>::infinity();
    std::int64_t bj = -1;
    for (std::int64_t j = 0; j < c; ++j) {
      if (j == y) continue;
      if (z[i * c + j] > best) {
        best = z[i * c + j];
        bj = j;
      }
    }
    const float margin = targeted ? best - z[i * c + y] : z[i * c + y] - best;
    if (margin > 0.0f) {
      total += margin;
      ctx->ibuf[static_cast<size_t>(i)] = bj;
    }
  }
  FloatBuffer out = pool::acquire(1);
  out[0] = static_cast<float>(total);
  return make_node({1}, std::move(out), {logits.impl()}, hinge_margin_loss_bw,
                   {.flag = targeted, .ctx = std::move(ctx),
                    .fwd = hinge_margin_loss_fwd});
}

Tensor smoothness_penalty(const Tensor& x, const std::vector<std::int64_t>& neighbor_idx,
                          std::int64_t alpha) {
  check_matrix(x, "smoothness_penalty");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  check(alpha > 0 && static_cast<std::int64_t>(neighbor_idx.size()) == n * alpha,
        "smoothness_penalty: neighbor_idx must have N*alpha entries");
  const float* px = x.data();
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < alpha; ++k) {
      const std::int64_t j = neighbor_idx[i * alpha + k];
      check(j >= 0 && j < n, "smoothness_penalty: neighbor index out of range");
      double d2 = 0.0;
      for (std::int64_t t = 0; t < c; ++t) {
        const double d = px[i * c + t] - px[j * c + t];
        d2 += d * d;
      }
      total += std::sqrt(d2);
    }
  }
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->ibuf = neighbor_idx;
  FloatBuffer out = pool::acquire(1);
  out[0] = static_cast<float>(total);
  return make_node({1}, std::move(out), {x.impl()}, smoothness_penalty_bw,
                   {.i0 = alpha, .ctx = std::move(ctx), .fwd = smoothness_penalty_fwd});
}

// ---------------------------------------------------------------------------
// Normalization / regularization
// ---------------------------------------------------------------------------

Tensor batch_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  std::vector<float>& running_mean, std::vector<float>& running_var,
                  bool training, float momentum, float eps) {
  check_matrix(x, "batch_norm");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  check(gamma.numel() == c && beta.numel() == c, "batch_norm: affine parameter size");
  check(static_cast<std::int64_t>(running_mean.size()) == c &&
            static_cast<std::int64_t>(running_var.size()) == c,
        "batch_norm: running stats size");
  const float* px = x.data();
  std::vector<float> mean_v(static_cast<size_t>(c)), inv_std(static_cast<size_t>(c));
  if (training) {
    for (std::int64_t j = 0; j < c; ++j) {
      double m = 0.0;
      for (std::int64_t i = 0; i < n; ++i) m += px[i * c + j];
      m /= static_cast<double>(n);
      double var = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const double d = px[i * c + j] - m;
        var += d * d;
      }
      var /= static_cast<double>(n);
      mean_v[j] = static_cast<float>(m);
      inv_std[j] = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      running_mean[j] = (1.0f - momentum) * running_mean[j] + momentum * static_cast<float>(m);
      running_var[j] = (1.0f - momentum) * running_var[j] + momentum * static_cast<float>(var);
    }
  } else {
    for (std::int64_t j = 0; j < c; ++j) {
      mean_v[j] = running_mean[j];
      inv_std[j] = 1.0f / std::sqrt(running_var[j] + eps);
    }
  }
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  // ctx.fbuf layout: [xhat (n*c) | inv_std (c)].
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->fbuf = pool::acquire(static_cast<size_t>(n * c + c));
  float* xhat = ctx->fbuf.data();
  simd::active().bn_affine(px, gamma.data(), beta.data(), mean_v.data(),
                           inv_std.data(), out.data(), xhat, n, c);
  std::copy_n(inv_std.data(), c, xhat + n * c);
  return make_node(x.shape(), std::move(out), {x.impl(), gamma.impl(), beta.impl()},
                   batch_norm_bw, {.flag = training, .ctx = std::move(ctx)});
}

Tensor bn_relu_eval(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                    const std::vector<float>& running_mean,
                    const std::vector<float>& running_var, float eps) {
  check_matrix(x, "bn_relu_eval");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  check(gamma.numel() == c && beta.numel() == c, "bn_relu_eval: affine parameter size");
  check(static_cast<std::int64_t>(running_mean.size()) == c &&
            static_cast<std::int64_t>(running_var.size()) == c,
        "bn_relu_eval: running stats size");
  // ctx.fbuf layout: [mean (c) | inv_std (c)].
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->fbuf = pool::acquire(static_cast<size_t>(2 * c));
  float* mean = ctx->fbuf.data();
  float* inv_std = mean + c;
  for (std::int64_t j = 0; j < c; ++j) {
    mean[j] = running_mean[j];
    inv_std[j] = 1.0f / std::sqrt(running_var[j] + eps);
  }
  FloatBuffer out = pool::acquire(static_cast<size_t>(n * c));
  // Same expression shapes as the unfused bn -> relu chain, so the fused
  // output is bit-identical to relu(batch_norm(x, ..., eval)).
  simd::active().bn_relu_eval(x.data(), gamma.data(), beta.data(), mean, inv_std,
                              out.data(), n, c);
  return make_node(x.shape(), std::move(out), {x.impl(), gamma.impl(), beta.impl()},
                   bn_relu_eval_bw,
                   {.needs_output = true, .ctx = std::move(ctx), .fwd = bn_relu_eval_fwd});
}

Tensor dropout(const Tensor& x, float p, Rng& rng, bool training) {
  check(x.defined(), "dropout: undefined input");
  check(p >= 0.0f && p < 1.0f, "dropout: p must be in [0, 1)");
  if (!training || p == 0.0f) {
    // Identity: return the input handle itself. Gradients flow to x
    // unchanged, and the attack hot path (always eval mode) skips a full
    // copy plus a graph node per forward.
    return x;
  }
  const float keep = 1.0f - p;
  auto ctx = std::make_unique<BackwardCtx>();
  ctx->fbuf = pool::acquire(static_cast<size_t>(x.numel()));
  FloatBuffer out = pool::acquire(static_cast<size_t>(x.numel()));
  const float* px = x.data();
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng.uniform() < p ? 0.0f : 1.0f / keep;
    ctx->fbuf[i] = m;
    out[i] = px[i] * m;
  }
  return make_node(x.shape(), std::move(out), {x.impl()}, dropout_bw,
                   {.ctx = std::move(ctx)});
}

// ---------------------------------------------------------------------------
// Non-differentiable helpers
// ---------------------------------------------------------------------------

std::vector<int> argmax_rows(const Tensor& x) {
  check_matrix(x, "argmax_rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<int> out(static_cast<size_t>(n));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (px[i * c + j] > px[i * c + best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace pcss::tensor::ops
