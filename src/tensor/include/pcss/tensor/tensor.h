#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pcss/tensor/pool.h"
#include "pcss/tensor/rng.h"

namespace pcss::tensor {

using Shape = std::vector<std::int64_t>;

/// Returns the product of all dimensions in `shape` (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]" form, used in error messages.
std::string shape_str(const Shape& shape);

struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Reverse-mode rule for one node: reads the node's grad (and the inline
/// op state / context below) and accumulates into its parents' grads.
///
/// A plain function pointer acts as the op tag; per-node state lives in
/// the TensorImpl's inline scalar slots or, for ops that must save
/// buffers, in an optional BackwardCtx. This replaces the previous
/// std::function closures (one type-erased heap allocation per node) with
/// a single indirect call and zero allocations for scalar-parameterized
/// ops.
using BackwardFn = void (*)(TensorImpl& node);

/// Forward recomputation rule for one node, used by compiled step plans
/// (plan.h): rewrites node.data — and any value-dependent saved state such
/// as argmax indices — in place from the parents' current data. Symmetric
/// to BackwardFn: a plain function pointer resolved once at op-build time,
/// so a plan replay is a flat loop of indirect calls with no dispatch and
/// no allocation. Null for ops whose forward is not replayable (training
/// batch norm mutates running stats; training dropout draws a fresh mask).
using ForwardFn = void (*)(TensorImpl& node);

/// Saved-state record for backward rules that need more than scalars.
/// Field meaning is op-specific; `fbuf` returns to the buffer pool on
/// destruction.
struct BackwardCtx {
  FloatBuffer fbuf;                   ///< saved activations / weights / stats
  std::vector<std::int64_t> ibuf;     ///< saved indices
  std::vector<int> labels;            ///< class labels (loss ops)
  std::vector<std::uint8_t> mask;     ///< row mask (loss ops)
  ~BackwardCtx();
};

/// Storage node shared by Tensor handles. Holds the value, the gradient
/// (allocated lazily from the per-thread buffer pool), and the reverse-mode
/// dispatch record linking it to its parents in the autograd graph.
struct TensorImpl {
  FloatBuffer data;  ///< pooled, 32-byte aligned (see pool.h)
  FloatBuffer grad;  ///< empty until touched by backward()
  Shape shape;
  bool requires_grad = false;
  std::vector<TensorImplPtr> parents;
  BackwardFn backward_fn = nullptr;
  /// Set alongside backward_fn on gradient-carrying nodes; only compiled
  /// step plans call it (eager execution never re-runs a forward).
  ForwardFn forward_fn = nullptr;
  /// Inline op state (meaning is op-specific: a stride, a segment width,
  /// a scale factor...). Avoids a BackwardCtx allocation for most ops.
  std::int64_t op_i0 = 0;
  std::int64_t op_i1 = 0;
  float op_f0 = 0.0f;
  bool op_flag = false;
  /// True when backward_fn reads this node's own `data` (tanh, sigmoid,
  /// softmax, fused BN+ReLU...). In-place ops must not steal the value
  /// buffer of such a node.
  bool backward_reads_output = false;
  /// Set by release_graph() on nodes that carried backward state: a
  /// later backward() visiting such a node fails loudly instead of
  /// silently producing truncated gradients.
  bool graph_released = false;
  std::unique_ptr<BackwardCtx> ctx;

  ~TensorImpl();  ///< returns data/grad to the thread's buffer pool

  std::int64_t numel() const { return shape_numel(shape); }
  /// Allocates (zero-filled, from the pool) the gradient buffer if absent.
  void ensure_grad();
  /// Drops graph edges and backward state while keeping data/grad.
  /// Called by Tensor::backward() once traversal completes, so a long
  /// attack run never retains a step's graph through lingering handles.
  void release_graph();
};

/// Value-semantic handle to a TensorImpl. Copies alias the same storage;
/// use detach()/clone() for independent copies.
///
/// Tensors are float32, row-major, with dynamic rank. The engine is
/// define-by-run: ops build the graph as they execute, and
/// Tensor::backward() runs reverse-mode accumulation from a scalar root.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorImplPtr impl) : impl_(std::move(impl)) {}

  // -- Factories ----------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor from_data(Shape shape, std::vector<float> data);
  /// Zero-copy variant for callers that assembled the values directly in
  /// a pooled (32-byte aligned) buffer.
  static Tensor from_buffer(Shape shape, FloatBuffer data);
  /// i.i.d. normal entries with the given stddev.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// i.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);

  // -- Introspection -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::int64_t dim(int i) const;
  int rank() const;
  std::int64_t numel() const;
  bool requires_grad() const;
  Tensor& set_requires_grad(bool value);

  // -- Data access ---------------------------------------------------------
  float* data();
  const float* data() const;
  float item() const;  ///< value of a 1-element tensor
  float at(std::int64_t i) const;

  // -- Autograd ------------------------------------------------------------
  /// Gradient buffer (empty vector if backward never reached this node).
  const FloatBuffer& grad() const;
  FloatBuffer& grad_ref();
  void zero_grad();
  /// Reverse-mode accumulation from this (scalar) tensor. After the
  /// traversal the graph is released (PyTorch's retain_graph=false):
  /// every visited node drops its parent edges and backward state, so
  /// intermediate buffers return to the pool as soon as the last handle
  /// dies. Calling backward() twice on the same graph is unsupported;
  /// rebuild the graph (define-by-run) instead.
  void backward();

  /// Copy of the data with no autograd history.
  Tensor detach() const;
  /// Alias for detach(); reads naturally when an independent buffer is the
  /// point rather than graph-cutting.
  Tensor clone() const { return detach(); }

  TensorImplPtr impl() const { return impl_; }

 private:
  TensorImplPtr impl_;
};

/// Raised on shape mismatches and misuse of the autograd API.
[[noreturn]] void tensor_fail(const std::string& message);

namespace detail {
void check(bool condition, const std::string& message);
}

}  // namespace pcss::tensor
