#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pcss/tensor/rng.h"

namespace pcss::tensor {

using Shape = std::vector<std::int64_t>;

/// Returns the product of all dimensions in `shape` (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]" form, used in error messages.
std::string shape_str(const Shape& shape);

struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Storage node shared by Tensor handles. Holds the value, the gradient
/// (allocated lazily), and the reverse-mode closure linking it to its
/// parents in the autograd graph.
struct TensorImpl {
  std::vector<float> data;
  std::vector<float> grad;  ///< empty until touched by backward()
  Shape shape;
  bool requires_grad = false;
  std::vector<TensorImplPtr> parents;
  /// Reads this node's grad and accumulates into parents' grads.
  std::function<void(TensorImpl&)> backward_fn;

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
  /// Allocates (zero-filled) the gradient buffer if absent.
  void ensure_grad();
};

/// Value-semantic handle to a TensorImpl. Copies alias the same storage;
/// use detach()/clone() for independent copies.
///
/// Tensors are float32, row-major, with dynamic rank. The engine is
/// define-by-run: ops build the graph as they execute, and
/// Tensor::backward() runs reverse-mode accumulation from a scalar root.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorImplPtr impl) : impl_(std::move(impl)) {}

  // -- Factories ----------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor from_data(Shape shape, std::vector<float> data);
  /// i.i.d. normal entries with the given stddev.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// i.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);

  // -- Introspection -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::int64_t dim(int i) const;
  int rank() const;
  std::int64_t numel() const;
  bool requires_grad() const;
  Tensor& set_requires_grad(bool value);

  // -- Data access ---------------------------------------------------------
  float* data();
  const float* data() const;
  float item() const;  ///< value of a 1-element tensor
  float at(std::int64_t i) const;

  // -- Autograd ------------------------------------------------------------
  /// Gradient buffer (empty vector if backward never reached this node).
  const std::vector<float>& grad() const;
  std::vector<float>& grad_ref();
  void zero_grad();
  /// Reverse-mode accumulation from this (scalar) tensor.
  void backward();

  /// Copy of the data with no autograd history.
  Tensor detach() const;
  /// Alias for detach(); reads naturally when an independent buffer is the
  /// point rather than graph-cutting.
  Tensor clone() const { return detach(); }

  TensorImplPtr impl() const { return impl_; }

 private:
  TensorImplPtr impl_;
};

/// Raised on shape mismatches and misuse of the autograd API.
[[noreturn]] void tensor_fail(const std::string& message);

namespace detail {
void check(bool condition, const std::string& message);
}

}  // namespace pcss::tensor
