#pragma once

#include <cstdint>
#include <vector>

#include "pcss/tensor/tensor.h"

/// Differentiable operations on Tensor. Every function builds the autograd
/// graph as it runs; gradients flow when any input has requires_grad set
/// (directly or transitively).
///
/// Conventions: matrices are [rows, cols] row-major. "Segment" ops treat a
/// [N*K, C] tensor as N contiguous groups of K rows (the neighbor axis used
/// by point-cloud aggregation).
namespace pcss::tensor::ops {

// -- Elementwise (same shape) -----------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// In-place add: consumes `a` (pass with std::move) and reuses its buffer
/// for the result when the node uniquely owns it; otherwise falls back to
/// the allocating add(). Autograd-safe (add's backward never reads the
/// overwritten values). Bitwise-identical to add(a, b).
Tensor add_inplace(Tensor a, const Tensor& b);

// -- Scalar broadcast ---------------------------------------------------------
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);

// -- Row-vector broadcast over [N, C] ----------------------------------------
Tensor add_rowvec(const Tensor& x, const Tensor& bias);

// -- Linear algebra ------------------------------------------------------------
/// [N, K] x [K, M] -> [N, M].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Fused fully-connected layer: matmul(x, w) with the row-vector bias
/// added in the kernel epilogue (pass an undefined bias to skip it).
/// Bitwise-identical to add_rowvec(matmul(x, w), bias), one node instead
/// of two and no intermediate buffer.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias);

// -- Nonlinearities -------------------------------------------------------------
Tensor relu(const Tensor& a);
/// In-place relu: consumes `a` (pass with std::move) and reuses its
/// buffer when uniquely owned; falls back to relu() otherwise. Backward
/// uses the output sign (relu(x) > 0 iff x > 0).
Tensor relu_inplace(Tensor a);
Tensor leaky_relu(const Tensor& a, float negative_slope);
Tensor tanh_op(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor square(const Tensor& a);

// -- Reductions -----------------------------------------------------------------
Tensor sum(const Tensor& a);   ///< -> [1]
Tensor mean(const Tensor& a);  ///< -> [1]
/// Row-wise sum of [N, C] -> [N, 1].
Tensor row_sum(const Tensor& a);
/// Elementwise sqrt(x + eps); eps guards the gradient at zero.
Tensor sqrt_op(const Tensor& a, float eps = 1e-12f);

// -- Structure / indexing ----------------------------------------------------
/// Rows of x selected by idx: [N, C] x idx[M] -> [M, C].
Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& idx);

/// Inverse of gather_rows: out is [out_rows, C] with out[idx[i]] = rows[i]
/// and every row not named by idx taken from `fill` (a constant
/// [out_rows*C] buffer). Indices must be distinct and in range. Gradient
/// flows to `rows` only; the fill is constant (the defended-model adapter
/// uses it to scatter surviving-point logits back to full-cloud rows).
Tensor scatter_rows(const Tensor& rows, const std::vector<std::int64_t>& idx,
                    std::int64_t out_rows, const std::vector<float>& fill);

/// y_n = sum_k weights[n*k_per_row + k] * x[idx[n*k_per_row + k]].
/// Generalizes nearest-neighbor upsampling (k=1, w=1) and the 3-NN
/// inverse-distance interpolation of PointNet++ feature propagation.
Tensor weighted_gather_rows(const Tensor& x, const std::vector<std::int64_t>& idx,
                            const std::vector<float>& weights, std::int64_t k_per_row);

/// Each row of x repeated k times consecutively: [N, C] -> [N*k, C].
Tensor repeat_rows(const Tensor& x, std::int64_t k);

/// Column-wise concatenation: [N, C1] + [N, C2] -> [N, C1+C2].
Tensor concat_cols(const Tensor& a, const Tensor& b);

/// Four-way column concatenation in one node/pass. Bitwise-identical to
/// concat_cols(concat_cols(a, b), concat_cols(c, d)) without the two
/// intermediate copies (RandLA-Net's LocSE assembly).
Tensor concat_cols4(const Tensor& a, const Tensor& b, const Tensor& c, const Tensor& d);

/// Columns [c0, c1) of x: [N, C] -> [N, c1-c0].
Tensor slice_cols(const Tensor& x, std::int64_t c0, std::int64_t c1);

/// base with delta added into columns [col0, col0 + delta.cols()).
/// Used by the feature assembler to splice a perturbation tensor into a
/// constant feature matrix while keeping gradient flow to the delta only.
Tensor scatter_add_cols(const Tensor& base, const Tensor& delta, std::int64_t col0);

// -- Fused model-block ops -----------------------------------------------------
/// EdgeConv edge assembly in one node: for each point i and its r-th
/// neighbor j = idx[i*k+r], row (i*k+r) is [x_i | x_j - x_i]. Forward and
/// backward are bitwise-identical to the unfused
/// concat_cols(repeat_rows(h, k), sub(gather_rows(h, idx), repeat_rows(h, k)))
/// chain, built without the three intermediate [N*k, *] tensors.
Tensor edge_features(const Tensor& h, const std::vector<std::int64_t>& idx,
                     std::int64_t k);

/// Grouped relative rows: out[i*k+r] = x[idx_a[i*k+r]] - x[idx_b[i]].
/// Bitwise-identical to sub(gather_rows(x, idx_a),
/// repeat_rows(gather_rows(x, idx_b), k)) (PointNet++ grouping).
Tensor gather_sub_rows(const Tensor& x, const std::vector<std::int64_t>& idx_a,
                       const std::vector<std::int64_t>& idx_b, std::int64_t k);

/// Row-broadcast multiply: out[i, j] = x[i, j] * col[i] with col [N, 1].
/// Bitwise-identical to mul(x, matmul(col, ones_row)) (PCT's attention
/// broadcast) without materializing the broadcast matrix.
Tensor mul_rows(const Tensor& x, const Tensor& col);

// -- Segment (neighbor-group) reductions over [N*K, C] -----------------------
Tensor segment_max(const Tensor& x, std::int64_t k);   ///< -> [N, C]
Tensor segment_mean(const Tensor& x, std::int64_t k);  ///< -> [N, C]
Tensor segment_sum(const Tensor& x, std::int64_t k);   ///< -> [N, C]
/// Softmax across each group of k rows, per channel (attentive pooling).
Tensor segment_softmax(const Tensor& x, std::int64_t k);

// -- Probabilistic heads ------------------------------------------------------
Tensor log_softmax_rows(const Tensor& x);
/// Mean negative log-likelihood over rows where mask[i] != 0
/// (pass an empty mask to average over all rows).
Tensor nll_loss_masked(const Tensor& log_probs, const std::vector<int>& labels,
                       const std::vector<std::uint8_t>& mask);

// -- Paper-specific losses ----------------------------------------------------
/// Eq. 10 (targeted=true):  sum_i max(max_{j!=y} z_j - z_y, 0)
/// Eq. 11 (targeted=false): sum_i max(z_y - max_{j!=y} z_j, 0)
/// over rows with mask[i] != 0 (empty mask = all rows).
Tensor hinge_margin_loss(const Tensor& logits, const std::vector<int>& labels,
                         const std::vector<std::uint8_t>& mask, bool targeted);

/// Eq. 9: sum_i sum_{j in Nei(i)} ||x_i - x_j||_2 with fixed neighbor
/// indices. neighbor_idx has N*alpha entries (row-major per point).
Tensor smoothness_penalty(const Tensor& x, const std::vector<std::int64_t>& neighbor_idx,
                          std::int64_t alpha);

// -- Normalization / regularization --------------------------------------------
/// BatchNorm over the row axis of [N, C]. In training mode uses batch
/// statistics and updates running_mean/var in place (momentum update);
/// in eval mode uses the running statistics.
Tensor batch_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  std::vector<float>& running_mean, std::vector<float>& running_var,
                  bool training, float momentum = 0.1f, float eps = 1e-5f);

/// Fused eval-mode BatchNorm + ReLU: the running statistics reduce BN to
/// a per-channel scale+shift, applied together with the ReLU in a single
/// pass. Bitwise-identical to relu(batch_norm(x, ..., training=false)).
/// The attack inner loop always runs models in eval mode, so this is the
/// hot normalization path.
Tensor bn_relu_eval(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                    const std::vector<float>& running_mean,
                    const std::vector<float>& running_var, float eps = 1e-5f);

/// Inverted dropout; identity in eval mode.
Tensor dropout(const Tensor& x, float p, Rng& rng, bool training);

// -- Non-differentiable helpers -------------------------------------------------
/// Row-wise argmax of [N, C] (predicted class per point).
std::vector<int> argmax_rows(const Tensor& x);

}  // namespace pcss::tensor::ops
