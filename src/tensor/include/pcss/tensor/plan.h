#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pcss/tensor/tensor.h"

namespace pcss::tensor::plan {

// ---------------------------------------------------------------------------
// Compiled step plans: capture-once / replay-many execution for loops that
// run the *same* autograd graph every iteration (the attack inner loop).
//
// Capture: a PlanBuilder turns on thread-local recording; one ordinary eager
// step then runs — every gradient-carrying node that ops.cpp materializes is
// appended to a flat op list in creation order (a valid topological order by
// construction), and Tensor::backward() hands the builder its reverse-walk
// schedule instead of releasing the graph. finish() freezes the result into
// a CompiledPlan.
//
// The arena: a plan does not copy values into new storage — it *pins* the
// step's pooled buffers by retaining every graph node. Buffer addresses,
// gradient addresses, saved-index contexts and the resolved per-op function
// pointers are therefore all fixed at capture time; a replay touches the
// buffer pool zero times (lint rule D008 keeps this file's TU free of
// pool::acquire) and re-resolves no dispatch.
//
// Replay:
//   replay_forward()  — run each recorded node's ForwardFn in capture order,
//                       rewriting node.data (and value-dependent saved state
//                       such as segment-max argmaxes) in place from the
//                       parents' current data.
//   replay_backward() — zero every gradient buffer backward touched last
//                       time, seed the scalar root with 1, and fire the
//                       captured reverse schedule. Accumulation order is the
//                       capture step's eager order, so replayed gradients
//                       are bit-identical to eager mode.
//
// Capturability: every recorded node must carry a ForwardFn. Ops whose
// forward has step-varying side effects outside the graph (training-mode
// batch norm's running statistics, training-mode dropout's fresh RNG mask)
// deliberately have none, so finish() fails and the caller stays eager.
// Graphs whose *shape* changes between steps (host-side kNN over perturbed
// positions, L0 masks shrinking) must not be replayed either — callers key
// re-capture off an explicit invalidation epoch (Projection::plan_epoch).
// ---------------------------------------------------------------------------

/// Size/shape summary of a captured plan, for tooling (pcss_run stats).
struct PlanStats {
  std::size_t forward_ops = 0;   ///< recorded nodes replayed per step
  std::size_t backward_ops = 0;  ///< backward rules fired per step
  std::size_t grad_buffers = 0;  ///< gradient buffers zeroed per step
  std::size_t nodes = 0;         ///< retained graph nodes (incl. constants)
  std::size_t arena_floats = 0;  ///< pinned value+gradient floats
};

/// One captured step: flat forward/backward schedules over pinned graph
/// nodes. Replay-only; build one with PlanBuilder. Movable, not copyable
/// (the plan owns the retained graph).
class CompiledPlan {
 public:
  CompiledPlan() = default;
  CompiledPlan(CompiledPlan&&) = default;
  CompiledPlan& operator=(CompiledPlan&&) = default;
  CompiledPlan(const CompiledPlan&) = delete;
  CompiledPlan& operator=(const CompiledPlan&) = delete;

  bool valid() const { return root_ != nullptr; }
  /// Drops the plan and its retained graph (buffers return to the pool as
  /// the node refcounts unwind).
  void reset();

  /// Recomputes every recorded node's value in capture order. The caller
  /// must have refreshed any persistent leaf values first (the plan reads
  /// leaves, it never writes them).
  void replay_forward() const;

  /// Zeroes captured gradients, seeds the root, fires the captured
  /// reverse schedule. Call after replay_forward().
  void replay_backward() const;

  PlanStats stats() const;

 private:
  friend class PlanBuilder;

  /// One schedule entry: the op's resolved function pointer plus the node
  /// it executes on (whose pinned buffers are the operands).
  struct Step {
    void (*fn)(TensorImpl&) = nullptr;
    TensorImpl* node = nullptr;
  };

  std::vector<Step> forward_;          ///< capture order (topological)
  std::vector<Step> backward_;         ///< eager reverse-walk order
  std::vector<FloatBuffer*> zeroed_;   ///< grads backward wrote last time
  TensorImpl* root_ = nullptr;         ///< scalar loss node
  std::vector<TensorImplPtr> keep_;    ///< pins every graph node (the arena)
};

/// Records the next eager step on this thread into a CompiledPlan. Scoped:
/// construction turns recording on, finish()/abort()/destruction turn it
/// off. One builder per thread at a time; capture and replay of the
/// resulting plan may happen on different threads (but not concurrently).
class PlanBuilder {
 public:
  PlanBuilder();
  ~PlanBuilder();
  PlanBuilder(const PlanBuilder&) = delete;
  PlanBuilder& operator=(const PlanBuilder&) = delete;

  /// Freezes the recorded step into `out`. Returns false — leaving `out`
  /// untouched — when the step was not capturable: no backward() ran, or
  /// a recorded op carries no ForwardFn (training-mode batch norm or
  /// dropout). The builder is spent either way.
  bool finish(CompiledPlan& out);

  /// Stops recording and discards everything recorded so far.
  void abort();

 private:
  bool active_ = false;
};

namespace detail {

/// True while the current thread is inside an active PlanBuilder. ops.cpp
/// checks this in make_node (to record) and in the in-place fast paths
/// (which must fall back to their allocating forms during capture: a
/// stolen operand buffer could not be replayed).
bool recording() noexcept;

/// Appends a freshly built gradient-carrying node to the recording
/// thread's op list. Called by make_node only when recording() is true.
void record_node(const TensorImplPtr& node);

/// Hook at the end of Tensor::backward(): when this thread is recording,
/// captures the reverse schedule implied by `order` (post-order, root
/// last) and returns true — the caller must then *skip* releasing the
/// graph, since the plan pins it. Returns false when not recording.
bool capture_backward(const TensorImplPtr& root,
                      const std::vector<TensorImplPtr>& order);

}  // namespace detail

}  // namespace pcss::tensor::plan
