#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pcss/tensor/ops.h"
#include "pcss/tensor/tensor.h"

/// Minimal neural-network module layer on top of the autograd ops:
/// Linear, BatchNorm1d, and an MLP convenience stack. Modules register
/// named parameters so checkpoints can be saved/loaded by name.
namespace pcss::tensor::nn {

/// A parameter together with its hierarchical name ("sa1.mlp.0.weight").
struct NamedParam {
  std::string name;
  Tensor tensor;
};

/// Named non-trainable state (batch-norm running statistics).
struct NamedBuffer {
  std::string name;
  std::vector<float>* values;
};

/// Base class for trainable modules. Parameters require grad; buffers are
/// plain float vectors serialized alongside them.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends this module's parameters under `prefix` (e.g. "encoder.").
  virtual void collect_params(const std::string& prefix, std::vector<NamedParam>& out) = 0;
  /// Appends non-trainable buffers under `prefix`.
  virtual void collect_buffers(const std::string& prefix, std::vector<NamedBuffer>& out) {
    (void)prefix;
    (void)out;
  }

  std::vector<Tensor> parameters() {
    std::vector<NamedParam> named;
    collect_params("", named);
    std::vector<Tensor> out;
    out.reserve(named.size());
    for (auto& p : named) out.push_back(p.tensor);
    return out;
  }
};

/// Fully connected layer y = x W + b with Kaiming-uniform init.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) const;

  void collect_params(const std::string& prefix, std::vector<NamedParam>& out) override;

  std::int64_t in_features() const { return weight_.dim(0); }
  std::int64_t out_features() const { return weight_.dim(1); }

 private:
  Tensor weight_;  ///< [in, out]
  Tensor bias_;    ///< [out] or undefined
};

/// BatchNorm over the point axis of [N, C] feature matrices.
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(std::int64_t features, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool training);
  /// BN followed by ReLU; in eval mode the two run as one fused
  /// scale+shift+ReLU pass (bitwise-identical to the composition).
  Tensor forward_relu(const Tensor& x, bool training);

  void collect_params(const std::string& prefix, std::vector<NamedParam>& out) override;
  void collect_buffers(const std::string& prefix, std::vector<NamedBuffer>& out) override;

 private:
  Tensor gamma_;
  Tensor beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;
  float momentum_;
  float eps_;
};

/// Shared-MLP block: a stack of Linear -> BatchNorm -> ReLU applied
/// per point ([N, C] rows). The final layer optionally skips BN+ReLU
/// (for logit heads).
class Mlp : public Module {
 public:
  /// `widths` = {in, h1, ..., out}. If `final_activation` is false the last
  /// Linear is left raw.
  Mlp(std::vector<std::int64_t> widths, Rng& rng, bool final_activation = true);

  Tensor forward(const Tensor& x, bool training);

  void collect_params(const std::string& prefix, std::vector<NamedParam>& out) override;
  void collect_buffers(const std::string& prefix, std::vector<NamedBuffer>& out) override;

  std::int64_t out_features() const;

 private:
  std::vector<std::unique_ptr<Linear>> linears_;
  std::vector<std::unique_ptr<BatchNorm1d>> norms_;  // size = linears or linears-1
  bool final_activation_;
};

}  // namespace pcss::tensor::nn
