#pragma once

#include <vector>

#include "pcss/tensor/tensor.h"

namespace pcss::tensor::optim {

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clears gradients of all parameters.
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

 protected:
  std::vector<Tensor> params_;
};

/// SGD with classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

  float lr;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba). Used both for model training and for the paper's
/// norm-unbounded (CW-style) attack inner loop (lr = 0.01 per §V-A).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void step() override;

  float lr;

 private:
  float beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace pcss::tensor::optim
