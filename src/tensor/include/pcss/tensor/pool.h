#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

/// Per-thread size-class buffer pool backing TensorImpl storage.
///
/// Every tensor data/grad buffer is acquired from (and on destruction
/// returned to) the calling thread's free lists, so the attack inner loop
/// reaches a steady state where each step's graph is built entirely from
/// recycled buffers. Pools are strictly thread-local: a buffer is only
/// ever handed out by the thread that holds it, so there is no locking
/// and no cross-thread aliasing; a buffer released on another thread
/// simply joins that thread's pool.
///
/// Size classes are powers of two (min 64 floats). acquire() hands back a
/// buffer whose capacity is at least the requested size with *unspecified*
/// contents; callers that accumulate must use acquire_zeroed().
///
/// Alignment guarantee: every FloatBuffer allocation — fresh or recycled —
/// starts on a 32-byte boundary (one AVX2 lane row). The SIMD kernels use
/// unaligned loads so this is a performance property, not a correctness
/// one, but it is part of the pool contract: release() asserts it in
/// debug builds so a stray unaligned buffer cannot silently enter the
/// free lists.
namespace pcss::tensor {

/// Minimal stateless allocator that over-aligns every allocation to
/// `Alignment` bytes (32 = one AVX2 register). All instances compare
/// equal, so containers can splice buffers freely.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no smaller than alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// The pooled tensor storage type: a std::vector whose data() is always
/// 32-byte aligned. TensorImpl::data/grad and BackwardCtx::fbuf use this
/// type; plain std::vector<float> stays the currency for non-pooled data
/// (weights on disk, running stats, JSON payloads).
using FloatBuffer = std::vector<float, AlignedAllocator<float, 32>>;

namespace pool {

/// Counters for the calling thread's pool. `cached_*` describe buffers
/// currently parked in the free lists; the steady-state memory test
/// asserts they stay flat across attack steps.
struct Stats {
  std::uint64_t acquires = 0;  ///< total acquire / acquire_zeroed calls
  std::uint64_t hits = 0;      ///< acquires served from a free list
  std::uint64_t releases = 0;  ///< buffers parked back into a free list
  std::uint64_t discards = 0;  ///< released buffers dropped (class/byte cap)
  std::size_t cached_buffers = 0;
  std::size_t cached_floats = 0;  ///< sum of cached capacities
};

/// Buffer of size n with unspecified contents (fast path: no fill).
/// data() is 32-byte aligned (see the pool contract above).
FloatBuffer acquire(std::size_t n);
/// Buffer of size n, zero-filled (for accumulation targets and grads).
FloatBuffer acquire_zeroed(std::size_t n);
/// Returns a buffer to the calling thread's pool (or frees it when the
/// pool is over its cap or the thread is shutting down). Debug builds
/// assert the buffer meets the 32-byte alignment contract before it can
/// be recycled.
void release(FloatBuffer&& buffer) noexcept;

Stats stats() noexcept;
void reset_stats() noexcept;
/// Frees every cached buffer of the calling thread.
void trim() noexcept;

/// Cross-thread view of one pool slot. Each thread's pool registers a
/// slot on first use; when the thread exits, the slot is marked not-live
/// and recycled by the next new pool thread (so the slot count is
/// bounded by peak concurrency, like the obs trace rings). The event
/// counters are *monotonic across slot reuse* — consumers that want
/// per-run numbers (the executor's `.perf.json` tensor_pool block) take
/// before/after deltas per slot index. `cached_floats` is instantaneous
/// and drops to 0 when the owning thread tears down.
struct SlotStats {
  std::uint64_t acquires = 0;
  std::uint64_t hits = 0;
  std::uint64_t releases = 0;
  std::uint64_t discards = 0;
  std::uint64_t cached_floats = 0;
  bool live = false;
};

/// Snapshot of every slot ever registered, in slot order. Safe to call
/// from any thread at any time (counters are relaxed atomics); exact at
/// quiescence, slightly stale while workers are mid-step.
std::vector<SlotStats> slot_stats();

}  // namespace pool

}  // namespace pcss::tensor
