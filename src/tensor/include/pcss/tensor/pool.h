#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// Per-thread size-class buffer pool backing TensorImpl storage.
///
/// Every tensor data/grad buffer is acquired from (and on destruction
/// returned to) the calling thread's free lists, so the attack inner loop
/// reaches a steady state where each step's graph is built entirely from
/// recycled buffers. Pools are strictly thread-local: a buffer is only
/// ever handed out by the thread that holds it, so there is no locking
/// and no cross-thread aliasing; a buffer released on another thread
/// simply joins that thread's pool.
///
/// Size classes are powers of two (min 64 floats). acquire() hands back a
/// buffer whose capacity is at least the requested size with *unspecified*
/// contents; callers that accumulate must use acquire_zeroed().
namespace pcss::tensor::pool {

/// Counters for the calling thread's pool. `cached_*` describe buffers
/// currently parked in the free lists; the steady-state memory test
/// asserts they stay flat across attack steps.
struct Stats {
  std::uint64_t acquires = 0;  ///< total acquire / acquire_zeroed calls
  std::uint64_t hits = 0;      ///< acquires served from a free list
  std::uint64_t releases = 0;  ///< buffers parked back into a free list
  std::uint64_t discards = 0;  ///< released buffers dropped (class/byte cap)
  std::size_t cached_buffers = 0;
  std::size_t cached_floats = 0;  ///< sum of cached capacities
};

/// Buffer of size n with unspecified contents (fast path: no fill).
std::vector<float> acquire(std::size_t n);
/// Buffer of size n, zero-filled (for accumulation targets and grads).
std::vector<float> acquire_zeroed(std::size_t n);
/// Returns a buffer to the calling thread's pool (or frees it when the
/// pool is over its cap or the thread is shutting down).
void release(std::vector<float>&& buffer) noexcept;

Stats stats() noexcept;
void reset_stats() noexcept;
/// Frees every cached buffer of the calling thread.
void trim() noexcept;

}  // namespace pcss::tensor::pool
