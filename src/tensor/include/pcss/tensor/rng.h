#pragma once

#include <cstdint>
#include <random>

namespace pcss::tensor {

/// Deterministic random number source used across the library.
///
/// Every component that needs randomness (weight init, scene generation,
/// random-sampling layers, attack restarts) takes an explicit Rng so that
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by stddev.
  float normal(float stddev = 1.0f) {
    std::normal_distribution<float> d(0.0f, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Fork a child generator; child streams are independent of later
  /// draws from the parent.
  Rng fork() { return Rng(engine_() ^ 0xd1b54a32d192ed03ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pcss::tensor
