#pragma once

#include <cstddef>
#include <cstdint>

/// Runtime-dispatched SIMD kernel backend for pcss::tensor.
///
/// The tensor ops route their inner loops through a table of function
/// pointers (`Kernels`). Two tables exist in the binary:
///
///   - scalar: compiled with the build's baseline flags (x86-64 SSE2),
///   - avx2:   the same kernel source compiled with -mavx2 (present only
///             when the compiler supports the flag).
///
/// **Determinism contract.** Both tables produce *bit-identical* outputs
/// for every kernel. This holds by construction:
///
///   1. Elementwise kernels perform the same IEEE-754 operation per
///      element; vector width cannot change a per-element result.
///   2. GEMM accumulates every output element in a single chain: the
///      existing C value (or 0 for the `_init` variant), plus one
///      round-to-nearest multiply and one add per p in ascending order.
///      Register tiling changes *where* the chain lives, never its shape.
///   3. Horizontal reductions (sum, dot, row_sum, softmax denominators)
///      use a **fixed 8-lane accumulation order**: element i joins lane
///      (i mod 8) in ascending order, and the eight lanes combine in the
///      fixed tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). The scalar
///      table runs the identical lane structure, so an AVX2 register of
///      8 lanes produces the same bits.
///   4. The whole library is compiled with -ffp-contract=off and the
///      kernels use explicit mul+add (no FMA), so contraction can never
///      differ between paths.
///
/// Because of (1)-(4), result documents in artifacts/results/ are
/// byte-identical whichever table executed, and a result store warmed
/// under one ISA is a 100% cache hit under the other.
///
/// Selection: the first call to active() picks avx2 when the CPU
/// supports it, unless the PCSS_SIMD environment variable overrides the
/// choice ("scalar" forces the fallback; "avx2" requests AVX2 and falls
/// back to scalar with a warning when unsupported; anything else
/// throws). Tests and benches may re-pin the table with force().
namespace pcss::tensor::simd {

enum class Isa { kScalar, kAvx2 };

/// The dispatch table. Raw-pointer kernels only: no allocation, no
/// exceptions, no dependency on the tensor graph. `acc_*` kernels
/// accumulate into their first argument (backward rules); the rest
/// overwrite their output. Size/shape validation happens in the ops
/// layer before dispatch.
struct Kernels {
  const char* name;  ///< "scalar" or "avx2" (recorded in perf documents)
  Isa isa;

  // -- GEMM (row-major). Chain: C (or 0) + sum_p a*b, ascending p. ----------
  /// C[n,m] += A[n,k] * B[k,m].
  void (*gemm_nn)(const float* a, const float* b, float* c, std::int64_t n,
                  std::int64_t k, std::int64_t m);
  /// C[n,m] = A[n,k] * B[k,m] (overwrites C; chain starts at 0, which is
  /// bit-identical to accumulating into a zero-filled C).
  void (*gemm_nn_init)(const float* a, const float* b, float* c, std::int64_t n,
                       std::int64_t k, std::int64_t m);
  /// C[n,m] += A^T * B with A stored [k,n] (weight-gradient shape).
  void (*gemm_at_b)(const float* a, const float* b, float* c, std::int64_t k,
                    std::int64_t n, std::int64_t m);

  // -- Elementwise maps ------------------------------------------------------
  void (*ew_add)(const float* a, const float* b, float* y, std::size_t n);
  void (*ew_sub)(const float* a, const float* b, float* y, std::size_t n);
  void (*ew_mul)(const float* a, const float* b, float* y, std::size_t n);
  void (*ew_scale)(const float* a, float s, float* y, std::size_t n);
  void (*ew_add_scalar)(const float* a, float s, float* y, std::size_t n);
  void (*ew_square)(const float* a, float* y, std::size_t n);
  void (*ew_relu)(const float* a, float* y, std::size_t n);
  void (*ew_leaky_relu)(const float* a, float slope, float* y, std::size_t n);

  // -- Elementwise accumulators (backward rules; all do y[i] += ...) ---------
  void (*acc_add)(float* y, const float* g, std::size_t n);            ///< y += g
  void (*acc_scalar)(float* y, float s, std::size_t n);                ///< y += s
  void (*acc_axpy)(float* y, const float* x, float s, std::size_t n);  ///< y += s*x
  void (*acc_mul)(float* y, const float* g, const float* x, std::size_t n);  ///< y += g*x
  /// y += g * (ref > 0 ? 1 : 0)   (relu backward; ref = input or output)
  void (*acc_relu_mask)(float* y, const float* g, const float* ref, std::size_t n);
  /// y += g * (ref > 0 ? 1 : slope)
  void (*acc_leaky_mask)(float* y, const float* g, const float* ref, float slope,
                         std::size_t n);
  void (*acc_square_bw)(float* y, const float* g, const float* x, std::size_t n);
  void (*acc_tanh_bw)(float* y, const float* g, const float* t, std::size_t n);
  void (*acc_sigmoid_bw)(float* y, const float* g, const float* s, std::size_t n);

  // -- Row-structured [n, c] -------------------------------------------------
  /// y[i,j] = x[i,j] + b[j]; y may alias x (in-place bias epilogue).
  void (*add_rowvec)(const float* x, const float* b, float* y, std::int64_t n,
                     std::int64_t c);
  /// acc[j] += sum_i x[i,j], ascending i per column (bias gradient).
  void (*acc_col_sum)(float* acc, const float* x, std::int64_t n, std::int64_t c);
  /// y[i,j] = x[i,j] * col[i].
  void (*mul_rows)(const float* x, const float* col, float* y, std::int64_t n,
                   std::int64_t c);

  // -- Reductions (fixed 8-lane accumulation order) --------------------------
  double (*reduce_sum_f64)(const float* a, std::size_t n);  ///< 8 double lanes
  float (*reduce_max)(const float* a, std::size_t n);       ///< n >= 1
  float (*dot)(const float* a, const float* b, std::size_t n);
  /// y[i] = 8-lane sum of row i of x[n,c].
  void (*row_sum)(const float* x, float* y, std::int64_t n, std::int64_t c);

  // -- Softmax family --------------------------------------------------------
  /// Row-wise log-softmax of x[n,c] (8-lane max and denominator).
  void (*log_softmax_rows)(const float* x, float* y, std::int64_t n, std::int64_t c);
  /// dx[i,j] += g[i,j] - exp(logp[i,j]) * (8-lane sum_j g[i,j]).
  void (*acc_log_softmax_bw)(float* dx, const float* g, const float* logp,
                             std::int64_t n, std::int64_t c);
  /// Softmax across each group of k rows per channel; scratch holds 2*c
  /// floats (caller-provided, contents trashed).
  void (*segment_softmax)(const float* x, float* y, float* scratch,
                          std::int64_t n_seg, std::int64_t k, std::int64_t c);
  /// Backward of segment_softmax; scratch holds c floats.
  void (*acc_segment_softmax_bw)(float* dx, const float* g, const float* y,
                                 float* scratch, std::int64_t n_seg, std::int64_t k,
                                 std::int64_t c);

  // -- Fused model blocks ----------------------------------------------------
  /// BatchNorm affine pass: xhat[i,j] = (x[i,j] - mean[j]) * inv_std[j],
  /// y[i,j] = gamma[j] * xhat[i,j] + beta[j] (xhat saved for backward).
  void (*bn_affine)(const float* x, const float* gamma, const float* beta,
                    const float* mean, const float* inv_std, float* y, float* xhat,
                    std::int64_t n, std::int64_t c);
  /// acc[j] += g[i,j] * x[i,j], ascending i per column (BN gamma grad).
  void (*acc_col_sum_mul)(float* acc, const float* g, const float* x,
                          std::int64_t n, std::int64_t c);
  /// dx[i,j] += g[i,j] * s0[j] * s1[j] (eval-mode BN input grad).
  void (*acc_scaled_rowvec)(float* dx, const float* g, const float* s0,
                            const float* s1, std::int64_t n, std::int64_t c);
  /// y[i,j] = relu(gamma[j] * (x[i,j] - mean[j]) * inv_std[j] + beta[j]).
  void (*bn_relu_eval)(const float* x, const float* gamma, const float* beta,
                       const float* mean, const float* inv_std, float* y,
                       std::int64_t n, std::int64_t c);
  /// Backward of bn_relu_eval; any of dx/dgamma/dbeta may be null.
  void (*acc_bn_relu_eval_bw)(float* dx, float* dgamma, float* dbeta, const float* g,
                              const float* y, const float* x, const float* gamma,
                              const float* mean, const float* inv_std, std::int64_t n,
                              std::int64_t c);
  /// EdgeConv assembly: row (i*k+r) of y is [h_i | h_j - h_i], j = idx[i*k+r].
  void (*edge_features)(const float* h, const std::int64_t* idx, float* y,
                        std::int64_t n, std::int64_t k, std::int64_t c);
  /// Backward of edge_features (two-pass order mirrors the unfused chain).
  void (*acc_edge_features_bw)(float* dh, const float* dy, const std::int64_t* idx,
                               std::int64_t n, std::int64_t k, std::int64_t c);
};

/// True when this CPU can execute AVX2 instructions.
bool cpu_supports_avx2();

/// The always-available baseline table.
const Kernels& scalar_kernels();

/// The AVX2 table, or nullptr when the binary was built without AVX2
/// support or this CPU cannot execute it. Never touches AVX2 code when
/// it returns nullptr, so it is safe to call anywhere.
const Kernels* avx2_kernels();

/// Table for an explicit ISA (nullptr when unavailable).
const Kernels* kernels_for(Isa isa);

/// The table the tensor ops dispatch through. Resolved once on first
/// use: PCSS_SIMD env override ("scalar" | "avx2"), otherwise the best
/// ISA the CPU supports. Throws std::runtime_error on an unrecognized
/// PCSS_SIMD value.
const Kernels& active();

Isa active_isa();
const char* active_name();

/// Re-pins the active table (tests / benches that compare dispatch paths
/// in one process). Throws when the requested ISA is unavailable.
void force(Isa isa);

/// Pure resolution rule, exposed for unit tests: maps a PCSS_SIMD value
/// (null = unset) and CPU capability to the selected ISA. Throws
/// std::runtime_error on an unrecognized value.
Isa resolve_isa(const char* env_value, bool cpu_avx2);

}  // namespace pcss::tensor::simd
