#include "pcss/tensor/plan.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

// Replay is allocation-free by contract: every buffer a replay touches was
// pinned at capture time, so this TU never consults the buffer pool (lint
// rule D008 enforces the absence of pool::acquire here).

namespace pcss::tensor::plan {

namespace {

/// Per-thread capture state. One PlanBuilder owns this at a time; the
/// recording flag is what make_node and the in-place fast paths poll.
struct Recorder {
  bool active = false;
  bool backward_captured = false;
  std::vector<TensorImplPtr> recorded;  ///< rg nodes, creation order
  TensorImplPtr root;                   ///< scalar backward root
  std::vector<TensorImplPtr> order;     ///< backward's post-order walk

  void clear() {
    active = false;
    backward_captured = false;
    recorded.clear();
    root.reset();
    order.clear();
  }
};

thread_local Recorder tl_recorder;

}  // namespace

namespace detail {

bool recording() noexcept { return tl_recorder.active; }

void record_node(const TensorImplPtr& node) { tl_recorder.recorded.push_back(node); }

bool capture_backward(const TensorImplPtr& root,
                      const std::vector<TensorImplPtr>& order) {
  Recorder& rec = tl_recorder;
  if (!rec.active) return false;
  rec.root = root;
  rec.order = order;
  rec.backward_captured = true;
  return true;  // the plan pins the graph; the caller must not release it
}

}  // namespace detail

// ---------------------------------------------------------------------------
// CompiledPlan
// ---------------------------------------------------------------------------

void CompiledPlan::reset() {
  forward_.clear();
  backward_.clear();
  zeroed_.clear();
  root_ = nullptr;
  keep_.clear();  // unpins the graph; buffers return to the pool as nodes die
}

void CompiledPlan::replay_forward() const {
  for (const Step& step : forward_) step.fn(*step.node);
}

void CompiledPlan::replay_backward() const {
  // Same starting state as eager: every gradient backward will touch is
  // zero-filled (eager gets this from lazily pool-zeroed fresh buffers;
  // the plan reuses the pinned ones), then the scalar root seeds the walk.
  for (FloatBuffer* grad : zeroed_) std::fill(grad->begin(), grad->end(), 0.0f);
  root_->grad[0] = 1.0f;
  for (const Step& step : backward_) step.fn(*step.node);
}

PlanStats CompiledPlan::stats() const {
  PlanStats s;
  s.forward_ops = forward_.size();
  s.backward_ops = backward_.size();
  s.grad_buffers = zeroed_.size();
  s.nodes = keep_.size();
  for (const TensorImplPtr& node : keep_) {
    s.arena_floats += node->data.size() + node->grad.size();
    if (node->ctx) s.arena_floats += node->ctx->fbuf.size();
  }
  return s;
}

// ---------------------------------------------------------------------------
// PlanBuilder
// ---------------------------------------------------------------------------

PlanBuilder::PlanBuilder() {
  if (tl_recorder.active) {
    tensor_fail("PlanBuilder: a capture is already active on this thread");
  }
  tl_recorder.clear();
  tl_recorder.active = true;
  active_ = true;
}

PlanBuilder::~PlanBuilder() {
  if (active_) abort();
}

void PlanBuilder::abort() {
  tl_recorder.clear();
  active_ = false;
}

bool PlanBuilder::finish(CompiledPlan& out) {
  Recorder& rec = tl_recorder;
  rec.active = false;
  active_ = false;
  const bool capturable =
      rec.backward_captured && rec.root != nullptr && rec.root->numel() == 1 &&
      std::all_of(rec.recorded.begin(), rec.recorded.end(),
                  [](const TensorImplPtr& n) { return n->forward_fn != nullptr; });
  if (!capturable) {
    // Not a replayable step (no backward ran, or an op without a ForwardFn
    // — training-mode batch norm / dropout). Dropping the recorder state
    // lets the step's graph unwind exactly as an eager step would.
    rec.clear();
    return false;
  }

  CompiledPlan plan;
  plan.forward_.reserve(rec.recorded.size());
  for (const TensorImplPtr& node : rec.recorded) {
    plan.forward_.push_back({node->forward_fn, node.get()});
  }
  // The backward walk visits `order` in reverse; a node's gradient is only
  // ever allocated by its children, all of which fire before the walk
  // reaches it — so the post-backward grad/backward_fn state of each node
  // reproduces exactly the schedule the eager walk executed.
  for (auto it = rec.order.rbegin(); it != rec.order.rend(); ++it) {
    TensorImpl& node = **it;
    if (node.backward_fn && !node.grad.empty()) {
      plan.backward_.push_back({node.backward_fn, &node});
    }
  }
  for (const TensorImplPtr& node : rec.order) {
    if (!node->grad.empty()) plan.zeroed_.push_back(&node->grad);
  }
  plan.root_ = rec.root.get();

  // Pin every node either schedule can touch: the backward order (which
  // includes leaves and constants) plus any recorded node that is not
  // reachable from the root.
  plan.keep_ = rec.order;
  std::unordered_set<TensorImpl*> kept;
  kept.reserve(plan.keep_.size());
  for (const TensorImplPtr& node : plan.keep_) kept.insert(node.get());
  for (const TensorImplPtr& node : rec.recorded) {
    if (kept.insert(node.get()).second) plan.keep_.push_back(node);
  }

  rec.clear();
  out = std::move(plan);
  return true;
}

}  // namespace pcss::tensor::plan
