#include "pcss/tensor/nn.h"

#include <cmath>

namespace pcss::tensor::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool bias) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  weight_ = Tensor::uniform({in_features, out_features}, rng, -bound, bound);
  weight_.set_requires_grad(true);
  if (bias) {
    bias_ = Tensor::zeros({out_features});
    bias_.set_requires_grad(true);
  }
}

Tensor Linear::forward(const Tensor& x) const {
  // Fused matmul+bias kernel; bitwise-identical to
  // add_rowvec(matmul(x, weight_), bias_).
  return ops::linear(x, weight_, bias_);
}

void Linear::collect_params(const std::string& prefix, std::vector<NamedParam>& out) {
  out.push_back({prefix + "weight", weight_});
  if (bias_.defined()) out.push_back({prefix + "bias", bias_});
}

BatchNorm1d::BatchNorm1d(std::int64_t features, float momentum, float eps)
    : gamma_(Tensor::full({features}, 1.0f)),
      beta_(Tensor::zeros({features})),
      running_mean_(static_cast<size_t>(features), 0.0f),
      running_var_(static_cast<size_t>(features), 1.0f),
      momentum_(momentum),
      eps_(eps) {
  gamma_.set_requires_grad(true);
  beta_.set_requires_grad(true);
}

Tensor BatchNorm1d::forward(const Tensor& x, bool training) {
  return ops::batch_norm(x, gamma_, beta_, running_mean_, running_var_, training, momentum_,
                         eps_);
}

Tensor BatchNorm1d::forward_relu(const Tensor& x, bool training) {
  if (!training) {
    // Eval mode reduces BN to a per-channel scale+shift; fuse it with the
    // ReLU (the attack inner loop's hot path). Bitwise-identical to the
    // unfused composition below.
    return ops::bn_relu_eval(x, gamma_, beta_, running_mean_, running_var_, eps_);
  }
  return ops::relu(forward(x, training));
}

void BatchNorm1d::collect_params(const std::string& prefix, std::vector<NamedParam>& out) {
  out.push_back({prefix + "gamma", gamma_});
  out.push_back({prefix + "beta", beta_});
}

void BatchNorm1d::collect_buffers(const std::string& prefix, std::vector<NamedBuffer>& out) {
  out.push_back({prefix + "running_mean", &running_mean_});
  out.push_back({prefix + "running_var", &running_var_});
}

Mlp::Mlp(std::vector<std::int64_t> widths, Rng& rng, bool final_activation)
    : final_activation_(final_activation) {
  detail::check(widths.size() >= 2, "Mlp: needs at least {in, out}");
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    linears_.push_back(std::make_unique<Linear>(widths[i], widths[i + 1], rng));
    const bool last = (i + 2 == widths.size());
    if (!last || final_activation_) {
      norms_.push_back(std::make_unique<BatchNorm1d>(widths[i + 1]));
    }
  }
}

Tensor Mlp::forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i]->forward(h);
    const bool last = (i + 1 == linears_.size());
    if (!last || final_activation_) {
      h = norms_[i]->forward_relu(h, training);
    }
  }
  return h;
}

void Mlp::collect_params(const std::string& prefix, std::vector<NamedParam>& out) {
  for (size_t i = 0; i < linears_.size(); ++i) {
    linears_[i]->collect_params(prefix + "lin" + std::to_string(i) + ".", out);
  }
  for (size_t i = 0; i < norms_.size(); ++i) {
    norms_[i]->collect_params(prefix + "bn" + std::to_string(i) + ".", out);
  }
}

void Mlp::collect_buffers(const std::string& prefix, std::vector<NamedBuffer>& out) {
  for (size_t i = 0; i < norms_.size(); ++i) {
    norms_[i]->collect_buffers(prefix + "bn" + std::to_string(i) + ".", out);
  }
}

std::int64_t Mlp::out_features() const { return linears_.back()->out_features(); }

}  // namespace pcss::tensor::nn
