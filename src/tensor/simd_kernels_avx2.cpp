// AVX2 instantiation of the shared kernel source. CMake compiles this
// one translation unit with -mavx2 (when the compiler supports it), so
// the identical source vectorizes 8-wide; nothing else in the library
// may be built with AVX2 flags, or baseline CPUs could fault in shared
// inline code. No FMA: -ffp-contract=off plus explicit mul+add keeps
// every chain bit-identical to the scalar table.
//
// The table constructor itself may contain AVX2 instructions, so it must
// only run behind a cpuid check — simd.cpp guards every path to
// avx2_table() with cpu_supports_avx2().
#include "pcss/tensor/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#define PCSS_SIMD_IS_AVX2 1
#define PCSS_SIMD_NS avx2_impl
#include "simd_kernels.inc"
#undef PCSS_SIMD_NS

namespace pcss::tensor::simd::detail {

const Kernels* avx2_table() {
  static const Kernels table =
      pcss::tensor::simd::avx2_impl::build_table("avx2", Isa::kAvx2);
  return &table;
}

}  // namespace pcss::tensor::simd::detail

#else  // !__AVX2__: compiler could not target AVX2; the dispatcher sees null.

namespace pcss::tensor::simd::detail {

const Kernels* avx2_table() { return nullptr; }

}  // namespace pcss::tensor::simd::detail

#endif
