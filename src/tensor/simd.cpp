// Runtime ISA detection and kernel-table dispatch (see simd.h for the
// determinism contract the tables uphold).
#include "pcss/tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace pcss::tensor::simd {

namespace detail {
// Defined in simd_kernels_scalar.cpp / simd_kernels_avx2.cpp.
const Kernels& scalar_table();
const Kernels* avx2_table();
}  // namespace detail

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels& scalar_kernels() { return detail::scalar_table(); }

const Kernels* avx2_kernels() {
  // The cpuid guard must come first: merely constructing the AVX2 table
  // executes code from the -mavx2 translation unit.
  if (!cpu_supports_avx2()) return nullptr;
  return detail::avx2_table();
}

const Kernels* kernels_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar_kernels();
    case Isa::kAvx2:
      return avx2_kernels();
  }
  return nullptr;
}

Isa resolve_isa(const char* env_value, bool cpu_avx2) {
  if (env_value == nullptr || *env_value == '\0') {
    return cpu_avx2 ? Isa::kAvx2 : Isa::kScalar;
  }
  if (std::strcmp(env_value, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(env_value, "avx2") == 0) {
    if (cpu_avx2) return Isa::kAvx2;
    // Requested but unavailable: fall back rather than fail, so one CI
    // matrix definition can run on mixed fleets. The warning keeps the
    // downgrade visible in logs.
    std::fprintf(stderr,
                 "[pcss::tensor::simd] PCSS_SIMD=avx2 requested but this "
                 "CPU/binary lacks AVX2; using the scalar kernels\n");
    return Isa::kScalar;
  }
  throw std::runtime_error(
      "PCSS_SIMD: unrecognized value \"" + std::string(env_value) +
      "\" (expected \"scalar\" or \"avx2\")");
}

namespace {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* resolve_active() {
  const char* env = std::getenv("PCSS_SIMD");
  Isa isa = resolve_isa(env, cpu_supports_avx2());
  const Kernels* table = kernels_for(isa);
  // resolve_isa only returns an ISA the CPU can run; kAvx2 can still
  // yield a null table when the *binary* was built without AVX2
  // support. Auto-selection downgrades silently (best effort), but an
  // explicit PCSS_SIMD=avx2 request must stay visible in logs — a CI
  // leg that thinks it is exercising the AVX2 table while running
  // scalar twice is a coverage gap, not a convenience.
  if (table == nullptr) {
    if (env != nullptr && std::strcmp(env, "avx2") == 0) {
      std::fprintf(stderr,
                   "[pcss::tensor::simd] PCSS_SIMD=avx2 requested but this "
                   "binary was built without AVX2 kernels; using the scalar "
                   "table\n");
    }
    table = &scalar_kernels();
  }
  return table;
}

}  // namespace

const Kernels& active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: every thread resolves to the same table.
    table = resolve_active();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

Isa active_isa() { return active().isa; }

const char* active_name() { return active().name; }

void force(Isa isa) {
  const Kernels* table = kernels_for(isa);
  if (table == nullptr) {
    throw std::runtime_error(
        "simd::force: requested ISA is unavailable on this CPU/binary");
  }
  g_active.store(table, std::memory_order_release);
}

}  // namespace pcss::tensor::simd
