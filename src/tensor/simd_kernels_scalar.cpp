// Baseline (scalar / compiler-default SSE2) instantiation of the shared
// kernel source. This table is always present: it is the determinism
// reference the AVX2 build must match bit-for-bit, and the fallback on
// CPUs without AVX2.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "pcss/tensor/simd.h"

#define PCSS_SIMD_NS scalar_impl
#include "simd_kernels.inc"
#undef PCSS_SIMD_NS

namespace pcss::tensor::simd::detail {

const Kernels& scalar_table() {
  static const Kernels table =
      pcss::tensor::simd::scalar_impl::build_table("scalar", Isa::kScalar);
  return table;
}

}  // namespace pcss::tensor::simd::detail
