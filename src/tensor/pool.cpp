#include "pcss/tensor/pool.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

namespace pcss::tensor::pool {

namespace {

// Smallest pooled class: 2^6 = 64 floats. Anything below is cheaper to
// take straight from the allocator's small bins than to track.
constexpr std::size_t kMinClassLog2 = 6;
constexpr std::size_t kNumClasses = 26;  // up to 2^31 floats (8 GiB)
constexpr std::size_t kMaxPerClass = 256;
constexpr std::size_t kMaxCachedFloats = std::size_t{96} * 1024 * 1024;  // 384 MiB

std::size_t class_log2_for_request(std::size_t n) {
  std::size_t log2 = kMinClassLog2;
  while ((std::size_t{1} << log2) < n) ++log2;
  return log2;
}

struct Pool {
  std::vector<FloatBuffer> free_lists[kNumClasses];
  Stats counters;

  ~Pool() = default;
};

// The pool lives on the heap behind a plain-pointer TLS slot so that
// release() stays safe during thread/program teardown: after the owner's
// destructor runs the slot reads null and buffers are simply freed.
// (Static-duration tensors -- model fixtures, cached zoo models -- are
// destroyed after thread_local objects; they must not touch a dead pool.)
thread_local Pool* tl_pool = nullptr;

struct PoolOwner {
  Pool* pool;
  PoolOwner() : pool(new Pool) { tl_pool = pool; }
  ~PoolOwner() {
    tl_pool = nullptr;
    delete pool;
  }
};

Pool* ensure_pool() {
  thread_local PoolOwner owner;
  return tl_pool;
}

}  // namespace

FloatBuffer acquire(std::size_t n) {
  Pool* p = ensure_pool();
  if (p == nullptr) return FloatBuffer(n);
  ++p->counters.acquires;
  const std::size_t log2 = class_log2_for_request(n);
  if (log2 >= kMinClassLog2 + kNumClasses) {
    // Beyond the largest size class: bypass the pool entirely (release()
    // byte-caps such buffers away anyway).
    return FloatBuffer(n);
  }
  auto& list = p->free_lists[log2 - kMinClassLog2];
  if (!list.empty()) {
    FloatBuffer buf = std::move(list.back());
    list.pop_back();
    ++p->counters.hits;
    --p->counters.cached_buffers;
    p->counters.cached_floats -= buf.capacity();
    buf.resize(n);  // capacity >= 2^log2 >= n: never reallocates
    assert(reinterpret_cast<std::uintptr_t>(buf.data()) % 32 == 0 &&
           "pool: recycled buffer lost its 32-byte alignment");
    return buf;
  }
  FloatBuffer buf;
  buf.reserve(std::size_t{1} << log2);
  buf.resize(n);
  return buf;
}

FloatBuffer acquire_zeroed(std::size_t n) {
  FloatBuffer buf = acquire(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void release(FloatBuffer&& buffer) noexcept {
  FloatBuffer buf = std::move(buffer);
  Pool* p = tl_pool;  // null before first acquire or after thread teardown
  if (p == nullptr || buf.capacity() < (std::size_t{1} << kMinClassLog2)) return;
  // The allocator over-aligns every allocation; a violation here means a
  // buffer from some other source was handed to the pool.
  assert(reinterpret_cast<std::uintptr_t>(buf.data()) % 32 == 0 &&
         "pool: released buffer violates the 32-byte alignment contract");
  // Class from the *capacity* floor: a buffer cached in class c always has
  // capacity >= 2^c, so acquire() can resize without reallocating.
  std::size_t log2 = kMinClassLog2;
  while ((std::size_t{2} << log2) <= buf.capacity() && log2 + 1 < kMinClassLog2 + kNumClasses) {
    ++log2;
  }
  const std::size_t cls = log2 - kMinClassLog2;
  auto& list = p->free_lists[cls];
  if (list.size() >= kMaxPerClass ||
      p->counters.cached_floats + buf.capacity() > kMaxCachedFloats) {
    ++p->counters.discards;
    return;
  }
  ++p->counters.releases;
  ++p->counters.cached_buffers;
  p->counters.cached_floats += buf.capacity();
  list.push_back(std::move(buf));
}

Stats stats() noexcept {
  Pool* p = tl_pool;
  return p ? p->counters : Stats{};
}

void reset_stats() noexcept {
  Pool* p = tl_pool;
  if (p == nullptr) return;
  const std::size_t buffers = p->counters.cached_buffers;
  const std::size_t floats = p->counters.cached_floats;
  p->counters = Stats{};
  p->counters.cached_buffers = buffers;
  p->counters.cached_floats = floats;
}

void trim() noexcept {
  Pool* p = tl_pool;
  if (p == nullptr) return;
  for (auto& list : p->free_lists) list.clear();
  p->counters.cached_buffers = 0;
  p->counters.cached_floats = 0;
}

}  // namespace pcss::tensor::pool
