#include "pcss/tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace pcss::tensor::pool {

namespace {

// Smallest pooled class: 2^6 = 64 floats. Anything below is cheaper to
// take straight from the allocator's small bins than to track.
constexpr std::size_t kMinClassLog2 = 6;
constexpr std::size_t kNumClasses = 26;  // up to 2^31 floats (8 GiB)
constexpr std::size_t kMaxPerClass = 256;
constexpr std::size_t kMaxCachedFloats = std::size_t{96} * 1024 * 1024;  // 384 MiB

std::size_t class_log2_for_request(std::size_t n) {
  std::size_t log2 = kMinClassLog2;
  while ((std::size_t{1} << log2) < n) ++log2;
  return log2;
}

/// Cross-thread mirror of one pool's counters (see pool.h SlotStats).
/// The owning thread is the only writer; readers use relaxed loads.
/// Event counters are monotonic across slot reuse; cached_floats tracks
/// the live cache and is zeroed when the owner tears down.
struct SlotCounters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> discards{0};
  std::atomic<std::uint64_t> cached_floats{0};
  std::atomic<bool> live{true};
};

// GUARDS: g_slots (slot claim in PoolOwner, enumeration in slot_stats;
// the counters themselves are relaxed atomics and lock-free)
std::mutex g_slots_mutex;
std::vector<std::unique_ptr<SlotCounters>>& slots() {
  static std::vector<std::unique_ptr<SlotCounters>> list;
  return list;
}

SlotCounters* claim_slot() {
  const std::lock_guard<std::mutex> lock(g_slots_mutex);
  auto& list = slots();
  for (auto& slot : list) {
    bool expected = false;
    if (slot->live.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return slot.get();
    }
  }
  list.push_back(std::make_unique<SlotCounters>());
  return list.back().get();
}

struct Pool {
  std::vector<FloatBuffer> free_lists[kNumClasses];
  Stats counters;
  SlotCounters* slot = nullptr;

  ~Pool() = default;
};

// The pool lives on the heap behind a plain-pointer TLS slot so that
// release() stays safe during thread/program teardown: after the owner's
// destructor runs the slot reads null and buffers are simply freed.
// (Static-duration tensors -- model fixtures, cached zoo models -- are
// destroyed after thread_local objects; they must not touch a dead pool.)
thread_local Pool* tl_pool = nullptr;

struct PoolOwner {
  Pool* pool;
  PoolOwner() : pool(new Pool) {
    pool->slot = claim_slot();
    tl_pool = pool;
  }
  ~PoolOwner() {
    tl_pool = nullptr;
    // The cached buffers die with the pool: zero the cross-thread gauge
    // before handing the slot back (event counters stay monotonic).
    pool->slot->cached_floats.store(0, std::memory_order_relaxed);
    pool->slot->live.store(false, std::memory_order_release);
    delete pool;
  }
};

Pool* ensure_pool() {
  thread_local PoolOwner owner;
  return tl_pool;
}

}  // namespace

FloatBuffer acquire(std::size_t n) {
  Pool* p = ensure_pool();
  if (p == nullptr) return FloatBuffer(n);
  ++p->counters.acquires;
  p->slot->acquires.fetch_add(1, std::memory_order_relaxed);
  const std::size_t log2 = class_log2_for_request(n);
  if (log2 >= kMinClassLog2 + kNumClasses) {
    // Beyond the largest size class: bypass the pool entirely (release()
    // byte-caps such buffers away anyway).
    return FloatBuffer(n);
  }
  auto& list = p->free_lists[log2 - kMinClassLog2];
  if (!list.empty()) {
    FloatBuffer buf = std::move(list.back());
    list.pop_back();
    ++p->counters.hits;
    --p->counters.cached_buffers;
    p->counters.cached_floats -= buf.capacity();
    p->slot->hits.fetch_add(1, std::memory_order_relaxed);
    p->slot->cached_floats.fetch_sub(buf.capacity(), std::memory_order_relaxed);
    buf.resize(n);  // capacity >= 2^log2 >= n: never reallocates
    assert(reinterpret_cast<std::uintptr_t>(buf.data()) % 32 == 0 &&
           "pool: recycled buffer lost its 32-byte alignment");
    return buf;
  }
  FloatBuffer buf;
  buf.reserve(std::size_t{1} << log2);
  buf.resize(n);
  return buf;
}

FloatBuffer acquire_zeroed(std::size_t n) {
  FloatBuffer buf = acquire(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void release(FloatBuffer&& buffer) noexcept {
  FloatBuffer buf = std::move(buffer);
  Pool* p = tl_pool;  // null before first acquire or after thread teardown
  if (p == nullptr || buf.capacity() < (std::size_t{1} << kMinClassLog2)) return;
  // The allocator over-aligns every allocation; a violation here means a
  // buffer from some other source was handed to the pool.
  assert(reinterpret_cast<std::uintptr_t>(buf.data()) % 32 == 0 &&
         "pool: released buffer violates the 32-byte alignment contract");
  // Class from the *capacity* floor: a buffer cached in class c always has
  // capacity >= 2^c, so acquire() can resize without reallocating.
  std::size_t log2 = kMinClassLog2;
  while ((std::size_t{2} << log2) <= buf.capacity() && log2 + 1 < kMinClassLog2 + kNumClasses) {
    ++log2;
  }
  const std::size_t cls = log2 - kMinClassLog2;
  auto& list = p->free_lists[cls];
  if (list.size() >= kMaxPerClass ||
      p->counters.cached_floats + buf.capacity() > kMaxCachedFloats) {
    ++p->counters.discards;
    p->slot->discards.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++p->counters.releases;
  ++p->counters.cached_buffers;
  p->counters.cached_floats += buf.capacity();
  p->slot->releases.fetch_add(1, std::memory_order_relaxed);
  p->slot->cached_floats.fetch_add(buf.capacity(), std::memory_order_relaxed);
  list.push_back(std::move(buf));
}

Stats stats() noexcept {
  Pool* p = tl_pool;
  return p ? p->counters : Stats{};
}

void reset_stats() noexcept {
  Pool* p = tl_pool;
  if (p == nullptr) return;
  const std::size_t buffers = p->counters.cached_buffers;
  const std::size_t floats = p->counters.cached_floats;
  p->counters = Stats{};
  p->counters.cached_buffers = buffers;
  p->counters.cached_floats = floats;
}

void trim() noexcept {
  Pool* p = tl_pool;
  if (p == nullptr) return;
  for (auto& list : p->free_lists) list.clear();
  p->counters.cached_buffers = 0;
  p->counters.cached_floats = 0;
  p->slot->cached_floats.store(0, std::memory_order_relaxed);
}

std::vector<SlotStats> slot_stats() {
  std::vector<SlotStats> out;
  const std::lock_guard<std::mutex> lock(g_slots_mutex);
  for (const auto& slot : slots()) {
    SlotStats s;
    s.acquires = slot->acquires.load(std::memory_order_relaxed);
    s.hits = slot->hits.load(std::memory_order_relaxed);
    s.releases = slot->releases.load(std::memory_order_relaxed);
    s.discards = slot->discards.load(std::memory_order_relaxed);
    s.cached_floats = slot->cached_floats.load(std::memory_order_relaxed);
    s.live = slot->live.load(std::memory_order_acquire);
    out.push_back(s);
  }
  return out;
}

}  // namespace pcss::tensor::pool
