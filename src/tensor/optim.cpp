#include "pcss/tensor/optim.h"

#include <cmath>

namespace pcss::tensor::optim {

Sgd::Sgd(std::vector<Tensor> params, float lr_in, float momentum)
    : Optimizer(std::move(params)), lr(lr_in), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (auto& p : params_) velocity_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
}

void Sgd::step() {
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    const auto& g = p.grad();
    if (g.empty()) continue;
    float* data = p.data();
    auto& vel = velocity_[pi];
    for (size_t i = 0; i < g.size(); ++i) {
      vel[i] = momentum_ * vel[i] + g[i];
      data[i] -= lr * vel[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr_in, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), lr(lr_in), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    const auto& g = p.grad();
    if (g.empty()) continue;
    float* data = p.data();
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (size_t i = 0; i < g.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      data[i] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace pcss::tensor::optim
