#include "pcss/data/indoor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include "pcss/data/primitives.h"

namespace pcss::data {

namespace {

using pcss::pointcloud::Vec3;

const char* kIndoorNames[kIndoorNumClasses] = {
    "ceiling", "floor",  "wall", "beam",     "column", "window", "door",
    "table",   "chair",  "sofa", "bookcase", "board",  "clutter"};

struct Sample {
  Vec3 pos;
  Vec3 color;
  int label;
};

/// Weighted point emitter; weight acts as the expected class fraction.
struct Emitter {
  float weight;
  std::function<Sample(Rng&)> emit;
};

Vec3 base_color(IndoorClass c) {
  switch (c) {
    case IndoorClass::kCeiling:  return {0.92f, 0.92f, 0.90f};
    case IndoorClass::kFloor:    return {0.55f, 0.45f, 0.35f};
    case IndoorClass::kWall:     return {0.76f, 0.74f, 0.69f};
    case IndoorClass::kBeam:     return {0.64f, 0.62f, 0.59f};
    case IndoorClass::kColumn:   return {0.70f, 0.68f, 0.66f};
    case IndoorClass::kWindow:   return {0.55f, 0.70f, 0.86f};
    case IndoorClass::kDoor:     return {0.46f, 0.30f, 0.18f};
    case IndoorClass::kTable:    return {0.62f, 0.43f, 0.25f};
    case IndoorClass::kChair:    return {0.28f, 0.31f, 0.42f};
    case IndoorClass::kSofa:     return {0.47f, 0.20f, 0.22f};
    case IndoorClass::kBookcase: return {0.50f, 0.35f, 0.21f};
    case IndoorClass::kBoard:    return {0.20f, 0.38f, 0.30f};
    case IndoorClass::kClutter:  return {0.50f, 0.50f, 0.50f};
  }
  return {0.5f, 0.5f, 0.5f};
}

}  // namespace

const char* indoor_class_name(int label) {
  if (label < 0 || label >= kIndoorNumClasses) return "unknown";
  return kIndoorNames[label];
}

IndoorSceneGenerator::IndoorSceneGenerator(IndoorSceneConfig config) : config_(config) {
  if (config_.num_points <= 0) {
    throw std::invalid_argument("IndoorSceneGenerator: num_points must be positive");
  }
}

PointCloud IndoorSceneGenerator::generate(Rng& rng) const {
  const float w = rng.uniform(config_.min_width, config_.max_width);
  const float d = rng.uniform(config_.min_depth, config_.max_depth);
  const float h = rng.uniform(config_.min_height, config_.max_height);
  const float cnoise = config_.color_noise;

  // --- Architectural sub-regions on walls -------------------------------
  // Door on the front wall (y = 0).
  const float door_s0 = rng.uniform(0.4f, w - 1.6f);
  const float door_w = rng.uniform(0.85f, 1.1f), door_h = 2.1f;
  // Two windows on the back wall (y = d).
  const float win_w = rng.uniform(1.0f, 1.4f), win_z0 = 0.9f, win_z1 = 2.1f;
  const float win_a_s0 = rng.uniform(0.3f, w * 0.45f - win_w);
  const float win_b_s0 = rng.uniform(w * 0.55f, w - win_w - 0.3f);
  // Board on the right wall (x = w).
  const float board_s0 = rng.uniform(0.5f, d - 2.4f);
  const float board_w = rng.uniform(1.5f, 2.0f), board_z0 = 1.0f, board_z1 = 2.0f;

  auto classify_front_wall = [=](float s, float z) {
    if (s >= door_s0 && s <= door_s0 + door_w && z <= door_h) return IndoorClass::kDoor;
    return IndoorClass::kWall;
  };
  auto classify_back_wall = [=](float s, float z) {
    const bool in_z = z >= win_z0 && z <= win_z1;
    if (in_z && ((s >= win_a_s0 && s <= win_a_s0 + win_w) ||
                 (s >= win_b_s0 && s <= win_b_s0 + win_w))) {
      return IndoorClass::kWindow;
    }
    return IndoorClass::kWall;
  };
  auto classify_right_wall = [=](float s, float z) {
    if (s >= board_s0 && s <= board_s0 + board_w && z >= board_z0 && z <= board_z1) {
      return IndoorClass::kBoard;
    }
    return IndoorClass::kWall;
  };

  // --- Furniture placement ----------------------------------------------
  const int n_tables = static_cast<int>(rng.randint(1, 2));
  std::vector<Vec3> table_centers;
  for (int t = 0; t < n_tables; ++t) {
    table_centers.push_back(
        {rng.uniform(1.4f, w - 1.4f), rng.uniform(1.4f, d - 1.4f), 0.0f});
  }
  const int n_chairs = static_cast<int>(rng.randint(2, 4));
  std::vector<Vec3> chair_centers;
  for (int t = 0; t < n_chairs; ++t) {
    const Vec3& tc = table_centers[static_cast<size_t>(t) % table_centers.size()];
    const float angle = rng.uniform(0.0f, 6.2831853f);
    chair_centers.push_back(
        {std::clamp(tc[0] + 1.1f * std::cos(angle), 0.4f, w - 0.4f),
         std::clamp(tc[1] + 1.1f * std::sin(angle), 0.4f, d - 0.4f), 0.0f});
  }
  const Vec3 sofa_center{0.55f, rng.uniform(1.2f, d - 1.2f), 0.0f};
  const int n_bookcases = static_cast<int>(rng.randint(1, 2));
  std::vector<Vec3> bookcase_centers;
  for (int t = 0; t < n_bookcases; ++t) {
    bookcase_centers.push_back({rng.uniform(1.0f, w - 1.0f), d - 0.18f, 0.0f});
  }
  const Vec3 column_center{0.25f, 0.25f, 0.0f};
  const float beam_y = d * 0.5f;

  const int n_clutter = static_cast<int>(rng.randint(4, 8));
  std::vector<Vec3> clutter_centers;
  std::vector<Vec3> clutter_colors;
  for (int t = 0; t < n_clutter; ++t) {
    const bool on_table = rng.uniform() < 0.4f && !table_centers.empty();
    if (on_table) {
      const Vec3& tc = table_centers[static_cast<size_t>(
          rng.randint(0, static_cast<std::int64_t>(table_centers.size()) - 1))];
      clutter_centers.push_back({tc[0] + rng.uniform(-0.5f, 0.5f),
                                 tc[1] + rng.uniform(-0.3f, 0.3f),
                                 0.78f + rng.uniform(0.02f, 0.12f)});
    } else {
      clutter_centers.push_back({rng.uniform(0.4f, w - 0.4f), rng.uniform(0.4f, d - 0.4f),
                                 rng.uniform(0.05f, 0.25f)});
    }
    clutter_colors.push_back(
        {rng.uniform(0.15f, 0.9f), rng.uniform(0.15f, 0.9f), rng.uniform(0.15f, 0.9f)});
  }

  // --- Emitters with S3DIS-like class fractions ---------------------------
  std::vector<Emitter> emitters;
  auto mk = [&](IndoorClass c, Rng& r, const Vec3& p) {
    return Sample{p, vary_color(base_color(c), cnoise, r), static_cast<int>(c)};
  };

  emitters.push_back({0.16f, [=](Rng& r) {  // ceiling
                        Vec3 p{r.uniform(0.0f, w), r.uniform(0.0f, d), h};
                        return mk(IndoorClass::kCeiling, r, p);
                      }});
  emitters.push_back({0.17f, [=](Rng& r) {  // floor
                        Vec3 p{r.uniform(0.0f, w), r.uniform(0.0f, d), 0.0f};
                        return mk(IndoorClass::kFloor, r, p);
                      }});
  // Plain wall points: rejection-sample around the door/window/board
  // sub-regions, which have their own emitters below so that the classes
  // used by the paper's object-hiding study keep a workable point budget
  // even in small clouds.
  emitters.push_back({0.24f, [=](Rng& r) {
                        for (int attempt = 0; attempt < 24; ++attempt) {
                          const int wall = static_cast<int>(r.randint(0, 3));
                          float s;
                          const float z = r.uniform(0.0f, h);
                          switch (wall) {
                            case 0:
                              s = r.uniform(0.0f, w);
                              if (classify_front_wall(s, z) != IndoorClass::kWall) continue;
                              return mk(IndoorClass::kWall, r, {s, 0.0f, z});
                            case 1:
                              s = r.uniform(0.0f, w);
                              if (classify_back_wall(s, z) != IndoorClass::kWall) continue;
                              return mk(IndoorClass::kWall, r, {s, d, z});
                            case 2:
                              s = r.uniform(0.0f, d);
                              return mk(IndoorClass::kWall, r, {0.0f, s, z});
                            default:
                              s = r.uniform(0.0f, d);
                              if (classify_right_wall(s, z) != IndoorClass::kWall) continue;
                              return mk(IndoorClass::kWall, r, {w, s, z});
                          }
                        }
                        return mk(IndoorClass::kWall, r, {0.0f, d * 0.5f, h * 0.5f});
                      }});
  emitters.push_back({0.035f, [=](Rng& r) {  // door embedded in the front wall
                        const float s = r.uniform(door_s0, door_s0 + door_w);
                        const float z = r.uniform(0.0f, door_h);
                        return mk(IndoorClass::kDoor, r, {s, 0.0f, z});
                      }});
  emitters.push_back({0.04f, [=](Rng& r) {  // windows embedded in the back wall
                        const float s0 = r.uniform() < 0.5f ? win_a_s0 : win_b_s0;
                        const float s = r.uniform(s0, s0 + win_w);
                        const float z = r.uniform(win_z0, win_z1);
                        return mk(IndoorClass::kWindow, r, {s, d, z});
                      }});
  emitters.push_back({0.035f, [=](Rng& r) {  // board on the right wall
                        const float s = r.uniform(board_s0, board_s0 + board_w);
                        const float z = r.uniform(board_z0, board_z1);
                        // The board sits slightly proud of the wall.
                        return mk(IndoorClass::kBoard, r, {w - 0.03f, s, z});
                      }});
  emitters.push_back({0.02f, [=](Rng& r) {  // beam under the ceiling
                        Vec3 p = sample_box_surface({w * 0.5f, beam_y, h - 0.12f},
                                                    {w * 0.5f, 0.1f, 0.1f}, r);
                        return mk(IndoorClass::kBeam, r, p);
                      }});
  emitters.push_back({0.02f, [=](Rng& r) {  // column in the corner
                        Vec3 p = sample_box_surface(
                            {column_center[0], column_center[1], h * 0.5f},
                            {0.15f, 0.15f, h * 0.5f}, r);
                        return mk(IndoorClass::kColumn, r, p);
                      }});
  emitters.push_back({0.06f, [=](Rng& r) {  // tables: top + legs
                        const Vec3& tc = table_centers[static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(table_centers.size()) - 1))];
                        Vec3 p;
                        if (r.uniform() < 0.8f) {
                          p = sample_box_surface({tc[0], tc[1], 0.74f}, {0.7f, 0.4f, 0.025f}, r);
                        } else {
                          const float lx = r.uniform() < 0.5f ? -0.62f : 0.62f;
                          const float ly = r.uniform() < 0.5f ? -0.32f : 0.32f;
                          p = sample_cylinder_side({tc[0] + lx, tc[1] + ly, 0.0f}, 0.03f, 0.72f, r);
                        }
                        return mk(IndoorClass::kTable, r, p);
                      }});
  emitters.push_back({0.06f, [=](Rng& r) {  // chairs: seat + back + legs
                        const Vec3& cc = chair_centers[static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(chair_centers.size()) - 1))];
                        Vec3 p;
                        const float u = r.uniform();
                        if (u < 0.45f) {
                          p = sample_box_surface({cc[0], cc[1], 0.45f}, {0.22f, 0.22f, 0.02f}, r);
                        } else if (u < 0.85f) {
                          p = sample_box_surface({cc[0], cc[1] + 0.2f, 0.72f},
                                                 {0.22f, 0.02f, 0.25f}, r);
                        } else {
                          const float lx = r.uniform() < 0.5f ? -0.18f : 0.18f;
                          const float ly = r.uniform() < 0.5f ? -0.18f : 0.18f;
                          p = sample_cylinder_side({cc[0] + lx, cc[1] + ly, 0.0f}, 0.02f, 0.43f, r);
                        }
                        return mk(IndoorClass::kChair, r, p);
                      }});
  emitters.push_back({0.04f, [=](Rng& r) {  // sofa against the left wall
                        Vec3 p;
                        if (r.uniform() < 0.6f) {
                          p = sample_box_surface({sofa_center[0], sofa_center[1], 0.35f},
                                                 {0.45f, 0.9f, 0.18f}, r);
                        } else {
                          p = sample_box_surface({sofa_center[0] - 0.3f, sofa_center[1], 0.6f},
                                                 {0.12f, 0.9f, 0.3f}, r);
                        }
                        return mk(IndoorClass::kSofa, r, p);
                      }});
  emitters.push_back({0.06f, [=](Rng& r) {  // bookcases against the back wall
                        const Vec3& bc = bookcase_centers[static_cast<size_t>(r.randint(
                            0, static_cast<std::int64_t>(bookcase_centers.size()) - 1))];
                        Vec3 p = sample_box_surface({bc[0], bc[1], 0.9f}, {0.45f, 0.16f, 0.9f}, r);
                        return mk(IndoorClass::kBookcase, r, p);
                      }});
  emitters.push_back({0.04f, [=](Rng& r) {  // clutter blobs with random albedo
                        const auto bi = static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(clutter_centers.size()) - 1));
                        Vec3 p = sample_sphere(clutter_centers[bi], r.uniform(0.06f, 0.16f), r);
                        p[2] = std::max(p[2], 0.01f);
                        return Sample{p, vary_color(clutter_colors[bi], cnoise, r),
                                      static_cast<int>(IndoorClass::kClutter)};
                      }});

  // --- Draw the requested number of points --------------------------------
  float total_weight = 0.0f;
  for (const auto& e : emitters) total_weight += e.weight;

  PointCloud cloud;
  cloud.reserve(config_.num_points);
  for (std::int64_t i = 0; i < config_.num_points; ++i) {
    float pick = rng.uniform(0.0f, total_weight);
    const Emitter* chosen = &emitters.back();
    for (const auto& e : emitters) {
      if (pick < e.weight) {
        chosen = &e;
        break;
      }
      pick -= e.weight;
    }
    Sample s = chosen->emit(rng);
    // Lighting: brighter near the ceiling with a soft lateral gradient.
    const float brightness = 0.82f + 0.16f * (s.pos[2] / h) +
                             0.04f * std::sin(s.pos[0] * 1.7f + s.pos[1] * 0.9f);
    s.color = shade(s.color, brightness);
    s.pos = jitter(s.pos, config_.position_noise, rng);
    cloud.push_back(s.pos, s.color, s.label);
  }
  return cloud;
}

PointCloud IndoorSceneGenerator::generate_with_class(Rng& rng, int label,
                                                     std::int64_t min_count,
                                                     int max_attempts) const {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    PointCloud cloud = generate(rng);
    if (count_label(cloud, label) >= min_count) return cloud;
  }
  throw std::runtime_error(std::string("generate_with_class: could not produce enough '") +
                           indoor_class_name(label) + "' points");
}

std::int64_t count_label(const PointCloud& cloud, int label) {
  return std::count(cloud.labels.begin(), cloud.labels.end(), label);
}

}  // namespace pcss::data
