#include "pcss/data/outdoor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include "pcss/data/indoor.h"  // count_label
#include "pcss/data/primitives.h"

namespace pcss::data {

namespace {

using pcss::pointcloud::Vec3;

const char* kOutdoorNames[kOutdoorNumClasses] = {
    "man-made terrain", "natural terrain",   "high vegetation", "low vegetation",
    "building",         "hardscape",         "scanning artefact", "car"};

struct Sample {
  Vec3 pos;
  Vec3 color;
  int label;
};

struct Emitter {
  float weight;
  std::function<Sample(Rng&)> emit;
};

Vec3 base_color(OutdoorClass c) {
  switch (c) {
    case OutdoorClass::kManMadeTerrain:   return {0.36f, 0.36f, 0.37f};
    case OutdoorClass::kNaturalTerrain:   return {0.38f, 0.44f, 0.26f};
    case OutdoorClass::kHighVegetation:   return {0.18f, 0.38f, 0.16f};
    case OutdoorClass::kLowVegetation:    return {0.32f, 0.52f, 0.26f};
    case OutdoorClass::kBuilding:         return {0.62f, 0.58f, 0.52f};
    case OutdoorClass::kHardscape:        return {0.56f, 0.56f, 0.56f};
    case OutdoorClass::kScanningArtefact: return {0.80f, 0.75f, 0.70f};
    case OutdoorClass::kCar:              return {0.60f, 0.15f, 0.15f};
  }
  return {0.5f, 0.5f, 0.5f};
}

}  // namespace

const char* outdoor_class_name(int label) {
  if (label < 0 || label >= kOutdoorNumClasses) return "unknown";
  return kOutdoorNames[label];
}

int to_semantic3d_label(int index) { return index + 1; }
int from_semantic3d_label(int label) { return label - 1; }

OutdoorSceneGenerator::OutdoorSceneGenerator(OutdoorSceneConfig config) : config_(config) {
  if (config_.num_points <= 0) {
    throw std::invalid_argument("OutdoorSceneGenerator: num_points must be positive");
  }
}

PointCloud OutdoorSceneGenerator::generate(Rng& rng) const {
  const float hw = config_.half_width;
  const float hd = config_.half_depth;
  const float cnoise = config_.color_noise;
  const float road_half = rng.uniform(3.0f, 4.0f);

  // Natural terrain undulation (deterministic field per scene).
  const float ax = rng.uniform(0.2f, 0.4f), ay = rng.uniform(0.25f, 0.45f);
  const float amp = rng.uniform(0.2f, 0.4f);
  auto terrain_z = [=](float x, float y) {
    return amp * std::sin(x * ax) * std::cos(y * ay);
  };

  // Buildings on the far side of the road.
  const int n_buildings = static_cast<int>(rng.randint(2, 4));
  std::vector<Vec3> b_centers;
  std::vector<Vec3> b_half;
  for (int i = 0; i < n_buildings; ++i) {
    const float bw = rng.uniform(3.0f, 6.0f), bd = rng.uniform(2.5f, 4.0f);
    const float bh = rng.uniform(4.0f, 9.0f);
    b_centers.push_back({rng.uniform(-hw + bw, hw - bw), rng.uniform(hd * 0.55f, hd - bd),
                         bh * 0.5f});
    b_half.push_back({bw * 0.5f, bd * 0.5f, bh * 0.5f});
  }

  // Trees (high vegetation) on natural terrain.
  const int n_trees = static_cast<int>(rng.randint(4, 8));
  std::vector<Vec3> tree_pos;
  std::vector<float> tree_h, tree_r;
  for (int i = 0; i < n_trees; ++i) {
    const float x = rng.uniform(-hw + 2.0f, hw - 2.0f);
    const float y = rng.uniform(-hd + 2.0f, -road_half - 1.5f);
    tree_pos.push_back({x, y, terrain_z(x, y)});
    tree_h.push_back(rng.uniform(3.0f, 6.0f));
    tree_r.push_back(rng.uniform(1.0f, 2.0f));
  }

  // Bushes (low vegetation).
  const int n_bushes = static_cast<int>(rng.randint(6, 12));
  std::vector<Vec3> bush_pos;
  std::vector<float> bush_r;
  for (int i = 0; i < n_bushes; ++i) {
    const float x = rng.uniform(-hw + 1.0f, hw - 1.0f);
    const float y = rng.uniform() < 0.7f ? rng.uniform(-hd + 1.0f, -road_half - 0.5f)
                                         : rng.uniform(road_half + 0.5f, hd * 0.5f);
    bush_pos.push_back({x, y, terrain_z(x, y)});
    bush_r.push_back(rng.uniform(0.3f, 0.8f));
  }

  // Hardscape: low walls / benches near the road edge.
  const int n_hard = static_cast<int>(rng.randint(2, 4));
  std::vector<Vec3> hard_centers;
  std::vector<Vec3> hard_half;
  for (int i = 0; i < n_hard; ++i) {
    hard_centers.push_back({rng.uniform(-hw + 2.0f, hw - 2.0f),
                            (rng.uniform() < 0.5f ? -1.0f : 1.0f) *
                                rng.uniform(road_half + 0.3f, road_half + 1.5f),
                            0.4f});
    hard_half.push_back({rng.uniform(0.8f, 2.0f), 0.2f, 0.4f});
  }

  // Cars on the road. Each car: body box + cabin box + distinct paint.
  const int n_cars = static_cast<int>(rng.randint(2, 4));
  std::vector<Vec3> car_centers;
  std::vector<Vec3> car_colors;
  const Vec3 paints[] = {{0.62f, 0.12f, 0.12f}, {0.15f, 0.25f, 0.55f},
                         {0.85f, 0.85f, 0.85f}, {0.12f, 0.12f, 0.14f},
                         {0.55f, 0.55f, 0.58f}};
  for (int i = 0; i < n_cars; ++i) {
    car_centers.push_back({rng.uniform(-hw + 3.0f, hw - 3.0f),
                           rng.uniform(-road_half + 1.0f, road_half - 1.0f), 0.0f});
    car_colors.push_back(paints[rng.randint(0, 4)]);
  }

  // Scanning artefacts: sparse, very noisy clusters hovering in space.
  const int n_artefacts = static_cast<int>(rng.randint(1, 3));
  std::vector<Vec3> artefact_centers;
  for (int i = 0; i < n_artefacts; ++i) {
    artefact_centers.push_back({rng.uniform(-hw, hw), rng.uniform(-hd, hd),
                                rng.uniform(0.5f, 3.0f)});
  }

  std::vector<Emitter> emitters;
  auto mk = [cnoise](OutdoorClass c, Rng& r, const Vec3& p) {
    return Sample{p, vary_color(base_color(c), cnoise, r), static_cast<int>(c)};
  };

  emitters.push_back({0.20f, [=](Rng& r) {  // road (man-made terrain)
                        Vec3 p{r.uniform(-hw, hw), r.uniform(-road_half, road_half), 0.0f};
                        return mk(OutdoorClass::kManMadeTerrain, r, p);
                      }});
  emitters.push_back({0.22f, [=](Rng& r) {  // natural terrain
                        const float x = r.uniform(-hw, hw);
                        const float y = r.uniform() < 0.75f
                                            ? r.uniform(-hd, -road_half)
                                            : r.uniform(road_half, hd * 0.55f);
                        return mk(OutdoorClass::kNaturalTerrain, r, {x, y, terrain_z(x, y)});
                      }});
  emitters.push_back({0.16f, [=](Rng& r) {  // trees: trunk + conical canopy
                        const auto t = static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(tree_pos.size()) - 1));
                        Vec3 p;
                        if (r.uniform() < 0.25f) {
                          p = sample_cylinder_side(tree_pos[t], 0.18f, tree_h[t] * 0.45f, r);
                        } else {
                          Vec3 base = tree_pos[t];
                          base[2] += tree_h[t] * 0.35f;
                          p = sample_cone_side(base, tree_r[t], tree_h[t] * 0.65f, r);
                        }
                        return mk(OutdoorClass::kHighVegetation, r, p);
                      }});
  emitters.push_back({0.08f, [=](Rng& r) {  // bushes
                        const auto t = static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(bush_pos.size()) - 1));
                        Vec3 c = bush_pos[t];
                        c[2] += bush_r[t] * 0.4f;
                        Vec3 p = sample_sphere(c, bush_r[t], r, /*z_scale=*/0.55f);
                        p[2] = std::max(p[2], terrain_z(p[0], p[1]));
                        return mk(OutdoorClass::kLowVegetation, r, p);
                      }});
  emitters.push_back({0.16f, [=](Rng& r) {  // buildings
                        const auto t = static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(b_centers.size()) - 1));
                        Vec3 p = sample_box_surface(b_centers[t], b_half[t], r);
                        return mk(OutdoorClass::kBuilding, r, p);
                      }});
  emitters.push_back({0.05f, [=](Rng& r) {  // hardscape
                        const auto t = static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(hard_centers.size()) - 1));
                        Vec3 p = sample_box_surface(hard_centers[t], hard_half[t], r);
                        return mk(OutdoorClass::kHardscape, r, p);
                      }});
  emitters.push_back({0.02f, [=](Rng& r) {  // scanning artefacts
                        const auto t = static_cast<size_t>(r.randint(
                            0, static_cast<std::int64_t>(artefact_centers.size()) - 1));
                        Vec3 p = jitter(artefact_centers[t], 0.5f, r);
                        Vec3 c{r.uniform(0.3f, 1.0f), r.uniform(0.3f, 1.0f),
                               r.uniform(0.3f, 1.0f)};
                        return Sample{p, c, static_cast<int>(OutdoorClass::kScanningArtefact)};
                      }});
  emitters.push_back({0.11f, [=](Rng& r) {  // cars: body + cabin
                        const auto t = static_cast<size_t>(
                            r.randint(0, static_cast<std::int64_t>(car_centers.size()) - 1));
                        const Vec3& cc = car_centers[t];
                        Vec3 p;
                        if (r.uniform() < 0.7f) {
                          p = sample_box_surface({cc[0], cc[1], 0.55f}, {2.0f, 0.9f, 0.35f}, r);
                        } else {
                          p = sample_box_surface({cc[0] - 0.3f, cc[1], 1.15f},
                                                 {1.0f, 0.8f, 0.25f}, r);
                        }
                        return Sample{p, vary_color(car_colors[t], cnoise, r),
                                      static_cast<int>(OutdoorClass::kCar)};
                      }});

  float total_weight = 0.0f;
  for (const auto& e : emitters) total_weight += e.weight;

  PointCloud cloud;
  cloud.reserve(config_.num_points);
  for (std::int64_t i = 0; i < config_.num_points; ++i) {
    float pick = rng.uniform(0.0f, total_weight);
    const Emitter* chosen = &emitters.back();
    for (const auto& e : emitters) {
      if (pick < e.weight) {
        chosen = &e;
        break;
      }
      pick -= e.weight;
    }
    Sample s = chosen->emit(rng);
    // Outdoor illumination: mild distance-based attenuation from the
    // (virtual) scanner at the origin.
    const float dist = std::sqrt(s.pos[0] * s.pos[0] + s.pos[1] * s.pos[1]);
    const float brightness = 1.0f - 0.15f * std::min(dist / (hw + hd), 1.0f) +
                             0.05f * std::sin(s.pos[0] * 0.7f);
    s.color = shade(s.color, brightness);
    s.pos = jitter(s.pos, config_.position_noise, rng);
    cloud.push_back(s.pos, s.color, s.label);
  }
  return cloud;
}

PointCloud OutdoorSceneGenerator::generate_with_class(Rng& rng, int label,
                                                      std::int64_t min_count,
                                                      int max_attempts) const {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    PointCloud cloud = generate(rng);
    if (count_label(cloud, label) >= min_count) return cloud;
  }
  throw std::runtime_error(std::string("generate_with_class: could not produce enough '") +
                           outdoor_class_name(label) + "' points");
}

}  // namespace pcss::data
