#pragma once

#include <cstdint>
#include <string>

#include "pcss/pointcloud/point_cloud.h"
#include "pcss/tensor/rng.h"

namespace pcss::data {

using pcss::pointcloud::PointCloud;
using pcss::tensor::Rng;

/// S3DIS-compatible label set (the paper's Table IV/V indices: wall=2,
/// window=5, door=6, table=7, chair=8, bookcase=10, board=11).
enum class IndoorClass : int {
  kCeiling = 0,
  kFloor = 1,
  kWall = 2,
  kBeam = 3,
  kColumn = 4,
  kWindow = 5,
  kDoor = 6,
  kTable = 7,
  kChair = 8,
  kSofa = 9,
  kBookcase = 10,
  kBoard = 11,
  kClutter = 12,
};

inline constexpr int kIndoorNumClasses = 13;

const char* indoor_class_name(int label);

/// Configuration for a procedural indoor room (the S3DIS substitute).
struct IndoorSceneConfig {
  std::int64_t num_points = 2048;
  float min_width = 5.0f, max_width = 8.0f;
  float min_depth = 4.0f, max_depth = 7.0f;
  float min_height = 2.7f, max_height = 3.2f;
  float position_noise = 0.004f;  ///< scanner jitter (meters)
  float color_noise = 0.04f;      ///< per-point albedo variation
};

/// Generates S3DIS-like rooms: ceiling/floor/walls with embedded door,
/// windows and board, plus tables, chairs, sofa, bookcases, beam, column,
/// and clutter. Per-class point budgets loosely follow S3DIS Area-5 class
/// frequencies so every class used in the paper's object-hiding study has
/// enough points to attack.
class IndoorSceneGenerator {
 public:
  explicit IndoorSceneGenerator(IndoorSceneConfig config = {});

  /// One room drawn from the given generator; deterministic per Rng state.
  PointCloud generate(Rng& rng) const;

  /// Retries until the scene has at least `min_count` points of `label`
  /// (mirrors the paper's scene-selection rule for object hiding).
  PointCloud generate_with_class(Rng& rng, int label, std::int64_t min_count,
                                 int max_attempts = 64) const;

  const IndoorSceneConfig& config() const { return config_; }

 private:
  IndoorSceneConfig config_;
};

/// Number of points in `cloud` carrying ground-truth label `label`.
std::int64_t count_label(const PointCloud& cloud, int label);

}  // namespace pcss::data
