#pragma once

#include <cstdint>

#include "pcss/pointcloud/point_cloud.h"
#include "pcss/tensor/rng.h"

namespace pcss::data {

using pcss::pointcloud::PointCloud;
using pcss::tensor::Rng;

/// Semantic3D-compatible label set. Internally 0-based; the dataset's
/// published labels are these indices + 1 (paper: car=8 -> index 7,
/// man-made terrain=1 -> index 0, ...).
enum class OutdoorClass : int {
  kManMadeTerrain = 0,
  kNaturalTerrain = 1,
  kHighVegetation = 2,
  kLowVegetation = 3,
  kBuilding = 4,
  kHardscape = 5,
  kScanningArtefact = 6,
  kCar = 7,
};

inline constexpr int kOutdoorNumClasses = 8;

const char* outdoor_class_name(int label);

/// Converts between this library's 0-based indices and the Semantic3D
/// label numbering used in the paper's tables (1..8).
int to_semantic3d_label(int index);
int from_semantic3d_label(int label);

struct OutdoorSceneConfig {
  std::int64_t num_points = 4096;  ///< scaled down from Semantic3D's 1e8
  float half_width = 20.0f;        ///< scene extent along x
  float half_depth = 14.0f;        ///< scene extent along y
  float position_noise = 0.01f;
  float color_noise = 0.05f;
};

/// Procedural street scene: a road with cars, natural terrain with trees
/// and bushes, building facades, hardscape, and scanning-artefact noise
/// clusters. The class mix keeps every class used by the paper's outdoor
/// experiments (notably cars) well represented.
class OutdoorSceneGenerator {
 public:
  explicit OutdoorSceneGenerator(OutdoorSceneConfig config = {});

  PointCloud generate(Rng& rng) const;

  /// Retries until at least `min_count` points carry `label`.
  PointCloud generate_with_class(Rng& rng, int label, std::int64_t min_count,
                                 int max_attempts = 64) const;

  const OutdoorSceneConfig& config() const { return config_; }

 private:
  OutdoorSceneConfig config_;
};

}  // namespace pcss::data
