#pragma once

#include "pcss/pointcloud/point_cloud.h"
#include "pcss/tensor/rng.h"

/// Surface-sampling primitives shared by the procedural scene generators.
/// All samplers draw uniformly over the primitive's surface (or volume).
namespace pcss::data {

using pcss::pointcloud::Vec3;
using pcss::tensor::Rng;

/// Point on the parallelogram origin + a*u + b*v, a,b ~ U[0,1].
Vec3 sample_rect(const Vec3& origin, const Vec3& u, const Vec3& v, Rng& rng);

/// Point on the surface of an axis-aligned box, faces weighted by area.
Vec3 sample_box_surface(const Vec3& center, const Vec3& half_extents, Rng& rng);

/// Point inside an axis-aligned box volume.
Vec3 sample_solid_box(const Vec3& center, const Vec3& half_extents, Rng& rng);

/// Point on a sphere surface (optionally squashed along z by `z_scale`).
Vec3 sample_sphere(const Vec3& center, float radius, Rng& rng, float z_scale = 1.0f);

/// Point on the lateral surface of a vertical cylinder.
Vec3 sample_cylinder_side(const Vec3& base_center, float radius, float height, Rng& rng);

/// Point on the lateral surface of a vertical cone (apex up).
Vec3 sample_cone_side(const Vec3& base_center, float radius, float height, Rng& rng);

/// Gaussian positional jitter.
Vec3 jitter(const Vec3& p, float sigma, Rng& rng);

/// Gaussian color variation, clamped to [0,1]^3.
Vec3 vary_color(const Vec3& base, float sigma, Rng& rng);

/// Scales a color by a brightness factor, clamped to [0,1]^3.
Vec3 shade(const Vec3& color, float brightness);

}  // namespace pcss::data
