#include "pcss/data/primitives.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace pcss::data {

Vec3 sample_rect(const Vec3& origin, const Vec3& u, const Vec3& v, Rng& rng) {
  const float a = rng.uniform();
  const float b = rng.uniform();
  return {origin[0] + a * u[0] + b * v[0], origin[1] + a * u[1] + b * v[1],
          origin[2] + a * u[2] + b * v[2]};
}

Vec3 sample_box_surface(const Vec3& center, const Vec3& half, Rng& rng) {
  const float ax = half[1] * half[2];  // x-faces
  const float ay = half[0] * half[2];
  const float az = half[0] * half[1];
  const float total = 2.0f * (ax + ay + az);
  float pick = rng.uniform(0.0f, total);
  Vec3 p{rng.uniform(-half[0], half[0]), rng.uniform(-half[1], half[1]),
         rng.uniform(-half[2], half[2])};
  auto side = [&rng]() { return rng.uniform() < 0.5f ? -1.0f : 1.0f; };
  if (pick < 2.0f * ax) {
    p[0] = half[0] * side();
  } else if (pick < 2.0f * (ax + ay)) {
    p[1] = half[1] * side();
  } else {
    p[2] = half[2] * side();
  }
  return {center[0] + p[0], center[1] + p[1], center[2] + p[2]};
}

Vec3 sample_solid_box(const Vec3& center, const Vec3& half, Rng& rng) {
  return {center[0] + rng.uniform(-half[0], half[0]),
          center[1] + rng.uniform(-half[1], half[1]),
          center[2] + rng.uniform(-half[2], half[2])};
}

Vec3 sample_sphere(const Vec3& center, float radius, Rng& rng, float z_scale) {
  // Marsaglia: uniform direction via normalized Gaussians.
  float x, y, z, n2;
  do {
    x = rng.normal();
    y = rng.normal();
    z = rng.normal();
    n2 = x * x + y * y + z * z;
  } while (n2 < 1e-12f);
  const float inv = radius / std::sqrt(n2);
  return {center[0] + x * inv, center[1] + y * inv, center[2] + z * inv * z_scale};
}

Vec3 sample_cylinder_side(const Vec3& base_center, float radius, float height, Rng& rng) {
  const float theta = rng.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
  const float h = rng.uniform(0.0f, height);
  return {base_center[0] + radius * std::cos(theta), base_center[1] + radius * std::sin(theta),
          base_center[2] + h};
}

Vec3 sample_cone_side(const Vec3& base_center, float radius, float height, Rng& rng) {
  // Lateral surface area density is proportional to the local radius, i.e.
  // to (1 - t); sample t with density 2(1-t) via inverse transform.
  const float t = 1.0f - std::sqrt(1.0f - rng.uniform());
  const float r = radius * (1.0f - t);
  const float theta = rng.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
  return {base_center[0] + r * std::cos(theta), base_center[1] + r * std::sin(theta),
          base_center[2] + t * height};
}

Vec3 jitter(const Vec3& p, float sigma, Rng& rng) {
  return {p[0] + rng.normal(sigma), p[1] + rng.normal(sigma), p[2] + rng.normal(sigma)};
}

Vec3 vary_color(const Vec3& base, float sigma, Rng& rng) {
  Vec3 c{base[0] + rng.normal(sigma), base[1] + rng.normal(sigma), base[2] + rng.normal(sigma)};
  for (int a = 0; a < 3; ++a) c[a] = std::clamp(c[a], 0.0f, 1.0f);
  return c;
}

Vec3 shade(const Vec3& color, float brightness) {
  Vec3 c{color[0] * brightness, color[1] * brightness, color[2] * brightness};
  for (int a = 0; a < 3; ++a) c[a] = std::clamp(c[a], 0.0f, 1.0f);
  return c;
}

}  // namespace pcss::data
