// Reproduces Figure 3: three indoor scenes (the paper uses conference
// room / hallway / lobby) under the color-based norm-unbounded
// performance-degradation attack against PointNet++. For each scene a
// 4-panel PPM is written: original scene, original segmentation,
// perturbed scene, perturbed segmentation.
#include "bench_common.h"
#include "pcss/viz/render.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::viz::Image;

int main() {
  print_header("Figure 3 - degradation visualizations (PointNet++, 3 scenes)");
  pcss::train::ModelZoo zoo;
  auto model = zoo.pointnet2_indoor();
  const auto clouds = zoo.indoor_eval_scenes(3, /*seed=*/3100);
  const std::string dir = pcss::bench::figures_dir();

  AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  config.success_accuracy = 1.0f / 13.0f;

  for (size_t i = 0; i < clouds.size(); ++i) {
    const auto& cloud = clouds[i];
    const auto clean_pred = model->predict(cloud);
    const AttackResult adv = run_attack(*model, cloud, config);

    const int w = 220, h = 220;
    const Image panel = Image::hstack({
        pcss::viz::render_cloud_colors(cloud, w, h),
        pcss::viz::render_cloud_labels(cloud, clean_pred, w, h),
        pcss::viz::render_cloud_colors(adv.perturbed, w, h),
        pcss::viz::render_cloud_labels(adv.perturbed, adv.predictions, w, h),
    });
    const std::string path = dir + "/fig3_scene" + std::to_string(i) + ".ppm";
    panel.save_ppm(path);

    const double clean_acc =
        evaluate_segmentation(clean_pred, cloud.labels, 13).accuracy;
    const double adv_acc =
        evaluate_segmentation(adv.predictions, cloud.labels, 13).accuracy;
    std::printf("  scene %zu: acc %.2f%% -> %.2f%% (L2=%.2f), wrote %s\n", i,
                100.0 * clean_acc, 100.0 * adv_acc, adv.l2_color, path.c_str());
  }
  std::printf("\nExpected shape (paper Fig. 3): visually small color perturbations\n"
              "produce drastic changes in the segmentation panels.\n");
  return 0;
}
