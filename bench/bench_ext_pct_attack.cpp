// Extension bench (paper §VI "Other models"): the paper predicts its
// attacks apply to any gradient-generating model and names Point Cloud
// Transformer (PCT) specifically. This trains a small PCT segmentation
// model and runs the same degradation + hiding attacks against it.
#include "bench_hiding.h"
#include "pcss/models/pct.h"
#include "pcss/tensor/optim.h"
#include "pcss/train/trainer.h"

using namespace pcss::core;
using namespace pcss::bench;
using pcss::data::IndoorClass;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;

int main() {
  print_header("Extension (SSVI) - attacks against Point Cloud Transformer (PCT)");
  IndoorSceneGenerator gen(pcss::train::zoo_indoor_config());
  Rng init(71);
  pcss::models::PctConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  pcss::models::PctSeg model(config, init);

  pcss::train::TrainConfig tc;
  tc.iterations = pcss::bench::fast_mode() ? 60 : 300;
  tc.scene_pool = 16;
  const auto stats = pcss::train::train_model(
      model, [&gen](Rng& rng) { return gen.generate(rng); }, tc);
  std::printf("\nPCT trained: loss %.3f, train accuracy %.2f%%\n", stats.final_loss,
              100.0 * stats.final_train_accuracy);

  pcss::train::ModelZoo zoo;
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes);
  const SegMetrics clean = clean_metrics(model, clouds);
  std::printf("Clean held-out: Acc=%.2f%%  aIoU=%.2f%%\n", 100.0 * clean.accuracy,
              100.0 * clean.aiou);

  // Degradation (the Table III protocol).
  AttackConfig degrade = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  degrade.success_accuracy = 1.0f / 13.0f;
  const auto records = attack_cases(model, clouds, degrade, /*use_l0_distance=*/false);
  std::printf("\n[performance degradation, norm-unbounded]\n");
  print_baw(aggregate_cases(records), "L2");

  // Hiding (the Table IV protocol, window -> wall).
  Rng rng(71717);
  auto make_scene = [&](int) {
    return gen.generate_with_class(rng, static_cast<int>(IndoorClass::kWindow), 10);
  };
  AttackConfig hide = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  hide.success_psr = 0.98f;
  const HidingRow row = hiding_row(model, make_scene, scale().hiding_scenes,
                                   static_cast<int>(IndoorClass::kWindow),
                                   /*target=*/2, hide);
  std::printf("\n[object hiding, window -> wall]\n");
  print_hiding_row("window", row);

  std::printf("\nExpected shape: PCT is as vulnerable as the three paper families —\n"
              "the attack framework needs only gradients, confirming SSVI's claim.\n");
  return 0;
}
