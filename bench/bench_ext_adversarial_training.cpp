// Extension bench (paper §V-F): the paper lists adversarial training as
// a defense but skips it as "heavyweight". This quantifies both sides:
// robustness gained vs clean accuracy and training overhead, comparing a
// vanilla ResGCN with an adversarially trained twin under the bounded
// attack.
#include <chrono>

#include "bench_common.h"
#include "pcss/core/adv_train.h"
#include "pcss/models/resgcn.h"
#include "pcss/train/trainer.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::bench::scale;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;

namespace {

double attacked_accuracy(SegmentationModel& model, const std::vector<PointCloud>& clouds,
                         const AttackConfig& config) {
  double acc = 0.0;
  for (const auto& cloud : clouds) {
    const auto r = run_attack(model, cloud, config);
    acc += evaluate_segmentation(r.predictions, cloud.labels, 13).accuracy;
  }
  return acc / static_cast<double>(clouds.size());
}

}  // namespace

int main() {
  print_header("Extension (SSV-F) - adversarial training: robustness vs overhead");
  IndoorSceneGenerator gen(pcss::train::zoo_indoor_config());
  const bool fast = pcss::bench::fast_mode();

  pcss::models::ResGCNConfig mc;
  mc.num_classes = pcss::data::kIndoorNumClasses;
  mc.channels = 24;
  mc.blocks = 3;

  using clock = std::chrono::steady_clock;

  // Vanilla twin.
  Rng init_a(81);
  pcss::models::ResGCNSeg vanilla(mc, init_a);
  pcss::train::TrainConfig tc;
  tc.iterations = fast ? 60 : 250;
  tc.scene_pool = 12;
  const auto t0 = clock::now();
  pcss::train::train_model(vanilla, [&gen](Rng& rng) { return gen.generate(rng); }, tc);
  const double vanilla_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();

  // Adversarially trained twin (same init seed, same budget of steps).
  Rng init_b(81);
  pcss::models::ResGCNSeg robust(mc, init_b);
  AdvTrainConfig atc;
  atc.iterations = tc.iterations;
  atc.scene_pool = tc.scene_pool;
  atc.attack_steps = fast ? 2 : 5;
  const auto t1 = clock::now();
  const auto adv_stats = adversarial_train(
      robust, [&gen](Rng& rng) { return gen.generate(rng); }, atc);
  const double robust_seconds =
      std::chrono::duration<double>(clock::now() - t1).count();

  pcss::train::ModelZoo zoo;
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes);
  AttackConfig attack = base_config(AttackNorm::kBounded, AttackField::kColor);

  const double vanilla_clean = clean_metrics(vanilla, clouds).accuracy;
  const double robust_clean = clean_metrics(robust, clouds).accuracy;
  const double vanilla_adv = attacked_accuracy(vanilla, clouds, attack);
  const double robust_adv = attacked_accuracy(robust, clouds, attack);

  std::printf("\n  %-22s %-12s %-14s %s\n", "model", "clean Acc", "attacked Acc",
              "train time");
  std::printf("  %-22s %10.2f%% %12.2f%% %9.1fs\n", "vanilla", 100.0 * vanilla_clean,
              100.0 * vanilla_adv, vanilla_seconds);
  std::printf("  %-22s %10.2f%% %12.2f%% %9.1fs  (%d adv steps)\n", "adv-trained",
              100.0 * robust_clean, 100.0 * robust_adv, robust_seconds,
              adv_stats.adversarial_steps);
  std::printf("\nExpected shape: adversarial training raises attacked accuracy at a\n"
              "multiple of the training cost (the overhead the paper cites for not\n"
              "evaluating it) and a small clean-accuracy tax.\n");
  return 0;
}
