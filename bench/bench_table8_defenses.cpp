// Reproduces Table VIII: anomaly-detection defenses (SRS ~1% removed,
// revised SOR with the combined color+coordinate kNN) against both
// attacks on ResGCN indoor scenes.
//
// Thin wrapper over the registered "table8" defense-grid spec: the
// runner executes (or replays from artifacts/results/) and this binary
// only formats. `pcss_run run table8` produces the same numbers from
// the same cache.
#include "bench_common.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/zoo_provider.h"

using pcss::bench::print_header;
using pcss::bench::print_perf;
using pcss::runner::find_cell;
using pcss::runner::GridCellResult;

int main() {
  print_header("Table VIII - SRS / SOR defenses vs both attacks, ResGCN");
  pcss::runner::ZooModelProvider provider;
  pcss::runner::ResultStore store;
  const pcss::runner::ExperimentSpec* spec = pcss::runner::find_spec("table8");
  const pcss::runner::RunOutcome out = pcss::runner::run_spec(*spec, provider, store);

  const char* victim = "resgcn_indoor";
  for (const char* attack : {"clean", "norm-bounded", "norm-unbounded"}) {
    std::printf("\n[%s]\n", attack);
    for (const char* defense : {"none", "srs", "sor"}) {
      const GridCellResult& cell = find_cell(out.document, attack, defense, victim);
      std::printf("  %-6s Acc=%6.2f%%  aIoU=%6.2f%%  kept=%7.1f\n", defense,
                  100.0 * cell.mean_accuracy, 100.0 * cell.mean_aiou,
                  cell.mean_points_kept);
    }
  }
  print_perf(out.cache_hit ? "table8 run_spec (cache hit)" : "table8 run_spec",
             out.wall_seconds, out.attack_steps);
  std::printf("  result document: %s\n", out.path.c_str());
  std::printf("\nExpected shape (paper Table VIII / Finding 7): neither defense\n"
              "restores clean accuracy; SOR helps most against the norm-unbounded\n"
              "attack (its larger unclipped deltas look like outliers), SRS barely\n"
              "moves either attack.\n");
  return 0;
}
