// Reproduces Table VIII: anomaly-detection defenses (SRS, SOR) against
// both attacks on ResGCN indoor scenes. SRS removes ~1% of points (the
// paper's ratio); SOR uses k=2 with the color+coordinate distance.
#include "bench_common.h"
#include "pcss/core/defense.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::bench::scale;
using pcss::tensor::Rng;

namespace {

struct DefenseRow {
  double l2 = 0.0, acc = 0.0, aiou = 0.0;
};

void print_row(const char* attack, const char* defense, const DefenseRow& r) {
  std::printf("  %-15s %-5s L2=%6.2f  Acc=%6.2f%%  aIoU=%6.2f%%\n", attack, defense, r.l2,
              100.0 * r.acc, 100.0 * r.aiou);
}

}  // namespace

int main() {
  print_header("Table VIII - SRS / SOR defenses vs both attacks, ResGCN");
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes);
  const std::int64_t srs_remove =
      std::max<std::int64_t>(1, clouds.front().size() / 100);  // paper: ~1%

  for (AttackNorm norm : {AttackNorm::kBounded, AttackNorm::kUnbounded}) {
    AttackConfig config = base_config(norm, AttackField::kColor);
    DefenseRow none, srs, sor;
    for (size_t i = 0; i < clouds.size(); ++i) {
      const AttackResult adv = run_attack(*model, clouds[i], config);
      const SegMetrics base = evaluate_segmentation(adv.predictions, clouds[i].labels, 13);
      none.l2 += adv.l2_color;
      none.acc += base.accuracy;
      none.aiou += base.aiou;

      Rng rng(9000 + i);
      const auto srs_cloud = srs_defense(adv.perturbed, srs_remove, rng);
      const DefendedEval es = evaluate_defended(*model, srs_cloud, 13);
      srs.l2 += adv.l2_color;
      srs.acc += es.accuracy;
      srs.aiou += es.aiou;

      const auto sor_cloud = sor_defense(adv.perturbed, /*k=*/2, /*stddev_mult=*/1.0f,
                                         /*color_weight=*/1.0f);
      const DefendedEval eo = evaluate_defended(*model, sor_cloud, 13);
      sor.l2 += adv.l2_color;
      sor.acc += eo.accuracy;
      sor.aiou += eo.aiou;
    }
    const double n = static_cast<double>(clouds.size());
    none.l2 /= n; none.acc /= n; none.aiou /= n;
    srs.l2 /= n;  srs.acc /= n;  srs.aiou /= n;
    sor.l2 /= n;  sor.acc /= n;  sor.aiou /= n;
    std::printf("\n");
    print_row(to_string(norm), "None", none);
    print_row(to_string(norm), "SRS", srs);
    print_row(to_string(norm), "SOR", sor);
  }
  std::printf("\nExpected shape (paper Table VIII / Finding 7): neither defense\n"
              "restores clean accuracy; SOR helps most against the norm-unbounded\n"
              "attack (its larger unclipped deltas look like outliers), SRS barely\n"
              "moves either attack.\n");
  return 0;
}
