// Reproduces Table III: color-based performance degradation against
// PointNet++, ResGCN and RandLA-Net on indoor scenes, comparing the
// random-noise baseline (at the unbounded attack's L2) with the
// norm-unbounded and norm-bounded attacks.
#include <memory>

#include "bench_common.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_baw;
using pcss::bench::print_header;
using pcss::bench::print_perf;
using pcss::bench::scale;
using pcss::bench::total_steps;
using pcss::bench::WallTimer;

namespace {

void run_for_model(SegmentationModel& model, const std::vector<PointCloud>& clouds) {
  const SegMetrics clean = clean_metrics(model, clouds);
  std::printf("\n--- %s (clean Acc=%.2f%%, aIoU=%.2f%%) ---\n", model.name().c_str(),
              100.0 * clean.accuracy, 100.0 * clean.aiou);

  // Norm-unbounded first; its per-scene L2 calibrates the noise baseline,
  // as the paper matches baseline and attack at the same distance. The
  // whole batch is scheduled across the engine's worker pool.
  AttackConfig unbounded = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  unbounded.success_accuracy = 1.0f / 13.0f;
  const AttackEngine unb_engine(model, unbounded);
  WallTimer unb_timer;
  const std::vector<AttackResult> unb_results = unb_engine.run_batch(clouds);
  print_perf("norm-unbounded run_batch", unb_timer.seconds(), total_steps(unb_results));

  std::vector<CaseRecord> unb_records, noise_records;
  for (size_t i = 0; i < clouds.size(); ++i) {
    const AttackResult& adv = unb_results[i];
    const SegMetrics m =
        evaluate_segmentation(adv.predictions, clouds[i].labels, model.num_classes());
    unb_records.push_back({adv.l2_color, m.accuracy, m.aiou});

    const AttackResult noise =
        random_noise_baseline(model, clouds[i], adv.l2_color, 7000 + i);
    const SegMetrics mn =
        evaluate_segmentation(noise.predictions, clouds[i].labels, model.num_classes());
    noise_records.push_back({noise.l2_color, mn.accuracy, mn.aiou});
  }

  AttackConfig bounded = base_config(AttackNorm::kBounded, AttackField::kColor);
  bounded.success_accuracy = 1.0f / 13.0f;
  const AttackEngine bnd_engine(model, bounded);
  WallTimer bnd_timer;
  const std::vector<AttackResult> bnd_results = bnd_engine.run_batch(clouds);
  print_perf("norm-bounded run_batch", bnd_timer.seconds(), total_steps(bnd_results));
  std::vector<CaseRecord> bnd_records;
  for (size_t i = 0; i < clouds.size(); ++i) {
    const SegMetrics m = evaluate_segmentation(bnd_results[i].predictions,
                                               clouds[i].labels, model.num_classes());
    bnd_records.push_back({bnd_results[i].l2_color, m.accuracy, m.aiou});
  }

  std::printf("[Random noise]\n");
  print_baw(aggregate_cases(noise_records), "L2");
  std::printf("[Norm-unbounded]\n");
  print_baw(aggregate_cases(unb_records), "L2");
  std::printf("[Norm-bounded]\n");
  print_baw(aggregate_cases(bnd_records), "L2");
}

}  // namespace

int main() {
  print_header(
      "Table III - performance degradation on PointNet++/ResGCN/RandLA-Net (color, L2)");
  pcss::train::ModelZoo zoo;
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes);

  {
    auto m = zoo.pointnet2_indoor();
    run_for_model(*m, clouds);
  }
  {
    auto m = zoo.resgcn_indoor();
    run_for_model(*m, clouds);
  }
  {
    auto m = zoo.randla_indoor();
    run_for_model(*m, clouds);
  }
  std::printf("\nExpected shape (paper Table III): both optimized attacks collapse\n"
              "accuracy toward random guessing while random noise barely moves it;\n"
              "norm-unbounded wins on the hardest (worst-case) scenes.\n");
  return 0;
}
