// Reproduces Table III: color-based performance degradation against
// PointNet++, ResGCN and RandLA-Net on indoor scenes, comparing the
// random-noise baseline (at the unbounded attack's L2) with the
// norm-unbounded and norm-bounded attacks.
//
// Thin wrapper over the registered "table3" spec: the runner executes
// (or replays from artifacts/results/) and this binary only formats.
// `pcss_run run table3` produces the same numbers from the same cache.
#include "bench_common.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/zoo_provider.h"

using pcss::bench::print_baw;
using pcss::bench::print_header;
using pcss::bench::print_perf;

int main() {
  print_header(
      "Table III - performance degradation on PointNet++/ResGCN/RandLA-Net (color, L2)");
  pcss::runner::ZooModelProvider provider;
  pcss::runner::ResultStore store;
  const pcss::runner::ExperimentSpec* spec = pcss::runner::find_spec("table3");
  const pcss::runner::RunOutcome out = pcss::runner::run_spec(*spec, provider, store);

  for (const pcss::runner::ModelSection& section : out.document.models) {
    std::printf("\n--- %s (clean Acc=%.2f%%, aIoU=%.2f%%) ---\n", section.model.c_str(),
                100.0 * section.clean_accuracy, 100.0 * section.clean_aiou);
    std::printf("[Random noise]\n");
    print_baw(pcss::runner::find_variant(section, "random-noise").aggregate, "L2");
    std::printf("[Norm-unbounded]\n");
    print_baw(pcss::runner::find_variant(section, "norm-unbounded").aggregate, "L2");
    std::printf("[Norm-bounded]\n");
    print_baw(pcss::runner::find_variant(section, "norm-bounded").aggregate, "L2");
  }
  print_perf(out.cache_hit ? "table3 run_spec (cache hit)" : "table3 run_spec",
             out.wall_seconds, out.attack_steps);
  std::printf("  result document: %s\n", out.path.c_str());
  std::printf("\nExpected shape (paper Table III): both optimized attacks collapse\n"
              "accuracy toward random guessing while random noise barely moves it;\n"
              "norm-unbounded wins on the hardest (worst-case) scenes.\n");
  return 0;
}
