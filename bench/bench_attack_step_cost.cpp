// Reproduces the paper's §V-C overhead measurement ("each step takes 0.3
// seconds for the norm-bounded attack, and 0.2 for the norm-unbounded" on
// the authors' GPU testbed): google-benchmark timings of a single attack
// step (forward + adversarial loss + backward) per model on this CPU
// substrate, plus a clean-inference reference.
//
// Besides the console table, the run emits a machine-readable
// BENCH_step_cost.json (override the path with PCSS_BENCH_OUT) with
// steps/s per model next to the recorded pre-overhaul baseline, so CI can
// upload it and the perf trajectory accrues per PR.
//
// PCSS_PLAN selects the execution mode under the SAME benchmark names
// (default on; =0 for pure eager): plan mode captures one step into a
// compiled plan before timing and the loop measures replays, which is
// what the engine's attack loop executes from step 1 on. CI runs both
// modes and gates plan-on vs plan-off through bench_check --min-speedup.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pcss/runner/json.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/plan.h"
#include "pcss/tensor/simd.h"

using namespace pcss::core;
namespace ops = pcss::tensor::ops;
using pcss::models::ModelInput;
using pcss::tensor::Tensor;

namespace {

pcss::train::ModelZoo& zoo() {
  static pcss::train::ModelZoo instance;
  return instance;
}

const pcss::data::PointCloud& indoor_cloud() {
  static const auto clouds = zoo().indoor_eval_scenes(1, 9100);
  return clouds.front();
}

/// PCSS_PLAN unset or non-"0" = measure compiled-plan replays.
bool plan_mode() {
  const char* v = std::getenv("PCSS_PLAN");
  return v == nullptr || std::string(v) != "0";
}

/// One gradient step of the attack inner loop (the unit the paper times).
template <typename ModelGetter>
void attack_step(benchmark::State& state, ModelGetter get_model) {
  auto model = get_model();
  const auto& cloud = indoor_cloud();
  if (plan_mode()) {
    // Capture once outside the timing loop, then time what the engine's
    // attack loop runs on every step after the first: a replay of the
    // flat forward/backward schedules over the pinned buffers.
    Tensor delta = Tensor::zeros({cloud.size(), 3});
    delta.set_requires_grad(true);
    pcss::tensor::plan::PlanBuilder builder;
    ModelInput input{&cloud, delta, {}};
    Tensor logits = model->forward(input, false);
    Tensor loss = ops::hinge_margin_loss(logits, cloud.labels, {}, /*targeted=*/false);
    loss.backward();
    pcss::tensor::plan::CompiledPlan plan;
    if (builder.finish(plan)) {
      for (auto _ : state) {
        plan.replay_forward();
        plan.replay_backward();
        benchmark::DoNotOptimize(delta.grad().data());
      }
      return;
    }
    state.SkipWithError("step not capturable; rerun with PCSS_PLAN=0");
    return;
  }
  for (auto _ : state) {
    Tensor delta = Tensor::zeros({cloud.size(), 3});
    delta.set_requires_grad(true);
    ModelInput input{&cloud, delta, {}};
    Tensor logits = model->forward(input, false);
    Tensor loss = ops::hinge_margin_loss(logits, cloud.labels, {}, /*targeted=*/false);
    loss.backward();
    benchmark::DoNotOptimize(delta.grad().data());
  }
}

void BM_AttackStep_PointNet2(benchmark::State& state) {
  attack_step(state, [] { return zoo().pointnet2_indoor(); });
}
void BM_AttackStep_ResGCN(benchmark::State& state) {
  attack_step(state, [] { return zoo().resgcn_indoor(); });
}
void BM_AttackStep_RandLA(benchmark::State& state) {
  attack_step(state, [] { return zoo().randla_indoor(); });
}

void BM_CleanInference_ResGCN(benchmark::State& state) {
  auto model = zoo().resgcn_indoor();
  const auto& cloud = indoor_cloud();
  for (auto _ : state) {
    auto pred = model->predict(cloud);
    benchmark::DoNotOptimize(pred.data());
  }
}

BENCHMARK(BM_AttackStep_PointNet2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackStep_ResGCN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackStep_RandLA)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CleanInference_ResGCN)->Unit(benchmark::kMillisecond);

/// Pre-overhaul reference (Release, PCSS_FAST=1, the repo's 1-core dev
/// box, commit 82b374d — before the pooled-buffer/tiled-GEMM/fused-op
/// tensor engine). Emitted alongside each run so BENCH_step_cost.json
/// always records before and after.
struct BaselineEntry {
  const char* name;
  double ms_per_iteration;
};
constexpr BaselineEntry kPrePr3Baseline[] = {
    {"BM_AttackStep_PointNet2", 13.9},
    {"BM_AttackStep_ResGCN", 102.0},
    {"BM_AttackStep_RandLA", 42.1},
    {"BM_CleanInference_ResGCN", 39.0},
};

/// Console reporter that additionally captures every run so the compact
/// JSON document can be written after the benchmarks finish.
class StepCostJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double seconds =
          run.real_accumulated_time / static_cast<double>(run.iterations);
      captured_.push_back({run.benchmark_name(), seconds * 1e3,
                           seconds > 0.0 ? 1.0 / seconds : 0.0});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void write(const std::string& path, bool fast) const {
    using pcss::runner::Json;
    Json doc = Json::object();
    doc.set("benchmark", std::string("attack_step_cost"));
    doc.set("fast", fast);
    doc.set("plan", plan_mode());
    doc.set("simd_isa", std::string(pcss::tensor::simd::active_name()));
    Json results = Json::array();
    for (const auto& r : captured_) {
      Json entry = Json::object();
      entry.set("name", r.name);
      entry.set("ms_per_iteration", r.ms_per_iteration);
      entry.set("per_second", r.per_second);
      for (const BaselineEntry& base : kPrePr3Baseline) {
        if (r.name == base.name) {
          entry.set("baseline_ms_per_iteration", base.ms_per_iteration);
          entry.set("speedup_vs_baseline", base.ms_per_iteration / r.ms_per_iteration);
        }
      }
      results.push(std::move(entry));
    }
    doc.set("results", std::move(results));
    doc.set("baseline_commit", std::string("82b374d (pre tensor-engine overhaul)"));
    std::ofstream out(path);
    if (out) out << doc.dump() << "\n";
  }

 private:
  struct Captured {
    std::string name;
    double ms_per_iteration = 0.0;
    double per_second = 0.0;
  };
  std::vector<Captured> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Surface the dispatch path next to the timings: the same binary can
  // produce scalar or AVX2 numbers depending on PCSS_SIMD / the CPU.
  benchmark::AddCustomContext("pcss_simd_isa", pcss::tensor::simd::active_name());
  benchmark::AddCustomContext("pcss_plan", plan_mode() ? "on" : "off");
  StepCostJsonReporter json;
  benchmark::RunSpecifiedBenchmarks(&json);
  const char* out_path = std::getenv("PCSS_BENCH_OUT");
  json.write(out_path ? out_path : "BENCH_step_cost.json", pcss::runner::fast_mode());
  benchmark::Shutdown();
  return 0;
}
