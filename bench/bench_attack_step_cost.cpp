// Reproduces the paper's §V-C overhead measurement ("each step takes 0.3
// seconds for the norm-bounded attack, and 0.2 for the norm-unbounded" on
// the authors' GPU testbed): google-benchmark timings of a single attack
// step (forward + adversarial loss + backward) per model on this CPU
// substrate, plus a clean-inference reference.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "pcss/tensor/ops.h"

using namespace pcss::core;
namespace ops = pcss::tensor::ops;
using pcss::models::ModelInput;
using pcss::tensor::Tensor;

namespace {

pcss::train::ModelZoo& zoo() {
  static pcss::train::ModelZoo instance;
  return instance;
}

const pcss::data::PointCloud& indoor_cloud() {
  static const auto clouds = zoo().indoor_eval_scenes(1, 9100);
  return clouds.front();
}

/// One gradient step of the attack inner loop (the unit the paper times).
template <typename ModelGetter>
void attack_step(benchmark::State& state, ModelGetter get_model) {
  auto model = get_model();
  const auto& cloud = indoor_cloud();
  for (auto _ : state) {
    Tensor delta = Tensor::zeros({cloud.size(), 3});
    delta.set_requires_grad(true);
    ModelInput input{&cloud, delta, {}};
    Tensor logits = model->forward(input, false);
    Tensor loss = ops::hinge_margin_loss(logits, cloud.labels, {}, /*targeted=*/false);
    loss.backward();
    benchmark::DoNotOptimize(delta.grad().data());
  }
}

void BM_AttackStep_PointNet2(benchmark::State& state) {
  attack_step(state, [] { return zoo().pointnet2_indoor(); });
}
void BM_AttackStep_ResGCN(benchmark::State& state) {
  attack_step(state, [] { return zoo().resgcn_indoor(); });
}
void BM_AttackStep_RandLA(benchmark::State& state) {
  attack_step(state, [] { return zoo().randla_indoor(); });
}

void BM_CleanInference_ResGCN(benchmark::State& state) {
  auto model = zoo().resgcn_indoor();
  const auto& cloud = indoor_cloud();
  for (auto _ : state) {
    auto pred = model->predict(cloud);
    benchmark::DoNotOptimize(pred.data());
  }
}

BENCHMARK(BM_AttackStep_PointNet2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackStep_ResGCN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackStep_RandLA)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CleanInference_ResGCN)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
