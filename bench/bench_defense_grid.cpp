// Runs the full "defense_grid" spec (attack x defense x victim
// robustness matrix) through the runner — sharing the content-addressed
// cache with `pcss_run run defense_grid` — prints the matrix, and emits
// BENCH_defense.json (override the path with PCSS_BENCH_OUT) so CI can
// track defended-accuracy and throughput per PR.
#include <fstream>

#include "bench_common.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/json.h"
#include "pcss/runner/zoo_provider.h"

using pcss::bench::print_header;
using pcss::bench::print_perf;
using pcss::runner::GridCellResult;
using pcss::runner::Json;

int main() {
  print_header("Defense grid - attack x defense x victim robustness matrix");
  pcss::runner::ZooModelProvider provider;
  pcss::runner::ResultStore store;
  const pcss::runner::ExperimentSpec* spec = pcss::runner::find_spec("defense_grid");
  const pcss::runner::RunOutcome out = pcss::runner::run_spec(*spec, provider, store);

  pcss::runner::print_grid_matrix(out.document);
  print_perf(out.cache_hit ? "defense_grid run_spec (cache hit)" : "defense_grid run_spec",
             out.wall_seconds, out.attack_steps);
  std::printf("  result document: %s\n", out.path.c_str());

  // Machine-readable summary for the CI artifact: headline means per
  // cell plus the run's cache/throughput counters.
  Json doc = Json::object();
  doc.set("bench", "defense_grid");
  doc.set("fast", pcss::runner::fast_mode());
  doc.set("key", out.document.key);
  doc.set("cache_hit", out.cache_hit);
  doc.set("shards_total", out.shards_total);
  doc.set("shards_from_cache", out.shards_from_cache);
  doc.set("wall_seconds", out.wall_seconds);
  doc.set("attack_steps", out.attack_steps);
  Json cells = Json::array();
  for (const GridCellResult& cell : out.document.grid) {
    Json c = Json::object();
    c.set("attack", cell.attack);
    c.set("defense", cell.defense);
    c.set("victim", cell.victim);
    c.set("mean_accuracy", cell.mean_accuracy);
    c.set("mean_aiou", cell.mean_aiou);
    c.set("mean_points_kept", cell.mean_points_kept);
    cells.push(std::move(c));
  }
  doc.set("cells", std::move(cells));
  const char* out_path = std::getenv("PCSS_BENCH_OUT");
  const char* path = out_path ? out_path : "BENCH_defense.json";
  std::ofstream file(path);
  if (file) {
    file << doc.dump() << "\n";
    std::printf("  perf document: %s\n", path);
  }

  std::printf("\nReading the matrix: the \"none\" defense column on the cross-family\n"
              "victim is the paper's transferability story (Table IX); the defended\n"
              "columns on the source are Table VIII; chained and smoothing defenses\n"
              "extend both. Attacks here are *static* — see examples/defense_pipeline\n"
              "for the adaptive attacker that optimizes through the defense.\n");
  return 0;
}
