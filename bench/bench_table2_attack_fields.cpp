// Reproduces Table II: performance-degradation attack on ResGCN with the
// perturbed field swept over {color, coordinate, both} and the norm over
// {unbounded, bounded}, reporting L0 distance (Eq. 8) and best/avg/worst
// accuracy/aIoU. The paper's headline: color is the most vulnerable field
// (Finding 1) because coordinate perturbation disturbs point sampling.
#include "bench_common.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_baw;
using pcss::bench::print_header;
using pcss::bench::scale;

int main() {
  print_header("Table II - attacked fields (color vs coordinate vs both), ResGCN");
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes);

  const SegMetrics clean = clean_metrics(*model, clouds);
  std::printf("\nClean baseline: Acc=%.2f%%  aIoU=%.2f%%  (%d scenes, %lld pts each)\n",
              100.0 * clean.accuracy, 100.0 * clean.aiou, scale().scenes,
              static_cast<long long>(clouds.front().size()));

  const AttackField fields[] = {AttackField::kColor, AttackField::kCoordinate,
                                AttackField::kBoth};
  const AttackNorm norms[] = {AttackNorm::kUnbounded, AttackNorm::kBounded};
  for (AttackField field : fields) {
    for (AttackNorm norm : norms) {
      AttackConfig config = base_config(norm, field);
      config.success_accuracy = 1.0f / 13.0f;  // random-guess threshold, S3DIS
      const auto records = attack_cases(*model, clouds, config, /*use_l0_distance=*/true);
      std::printf("\n[%s / %s]\n", to_string(field), to_string(norm));
      print_baw(aggregate_cases(records), "L0");
    }
  }
  std::printf("\nExpected shape (paper Table II): color reaches the lowest accuracy\n"
              "at the smallest L0; coordinate and both are weaker because point\n"
              "sampling scrambles the neighborhoods the gradient relied on.\n");
  return 0;
}
