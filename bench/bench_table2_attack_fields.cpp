// Reproduces Table II: performance-degradation attack on ResGCN with the
// perturbed field swept over {color, coordinate, both} and the norm over
// {unbounded, bounded}, reporting L0 distance (Eq. 8) and best/avg/worst
// accuracy/aIoU. The paper's headline: color is the most vulnerable field
// (Finding 1) because coordinate perturbation disturbs point sampling.
//
// Thin wrapper over the registered "table2" spec: the runner executes
// (or replays from artifacts/results/) and this binary only formats.
// `pcss_run run table2` produces the same numbers from the same cache.
#include "bench_common.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/zoo_provider.h"

using pcss::bench::print_baw;
using pcss::bench::print_header;
using pcss::bench::print_perf;

int main() {
  print_header("Table II - attacked fields (color vs coordinate vs both), ResGCN");
  pcss::runner::ZooModelProvider provider;
  pcss::runner::ResultStore store;
  const pcss::runner::ExperimentSpec* spec = pcss::runner::find_spec("table2");
  const pcss::runner::RunOutcome out = pcss::runner::run_spec(*spec, provider, store);

  const pcss::runner::ModelSection& resgcn = out.document.models.front();
  std::printf("\nClean baseline: Acc=%.2f%%  aIoU=%.2f%%  (%d scenes)\n",
              100.0 * resgcn.clean_accuracy, 100.0 * resgcn.clean_aiou,
              out.document.scene_count);
  for (const pcss::runner::VariantResult& vr : resgcn.variants) {
    std::printf("\n[%s]\n", vr.label.c_str());
    print_baw(vr.aggregate, "L0");
  }
  print_perf(out.cache_hit ? "table2 run_spec (cache hit)" : "table2 run_spec",
             out.wall_seconds, out.attack_steps);
  std::printf("  result document: %s\n", out.path.c_str());
  std::printf("\nExpected shape (paper Table II): color reaches the lowest accuracy\n"
              "at the smallest L0; coordinate and both are weaker because point\n"
              "sampling scrambles the neighborhoods the gradient relied on.\n");
  return 0;
}
