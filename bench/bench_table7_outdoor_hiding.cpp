// Reproduces Table VII: outdoor object hiding against RandLA-Net — cars
// (Semantic3D label 8) recolored toward man-made terrain (1), natural
// terrain (2), high vegetation (3), and low vegetation (4).
#include "bench_hiding.h"
#include "pcss/data/outdoor.h"

using namespace pcss::core;
using namespace pcss::bench;
using pcss::data::OutdoorClass;
using pcss::data::OutdoorSceneGenerator;
using pcss::data::outdoor_class_name;
using pcss::data::to_semantic3d_label;
using pcss::tensor::Rng;

int main() {
  print_header("Table VII - outdoor object hiding: car -> terrain/vegetation");
  pcss::train::ModelZoo zoo;
  auto model = zoo.randla_outdoor();
  OutdoorSceneGenerator gen(pcss::train::zoo_outdoor_config());

  const int source = static_cast<int>(OutdoorClass::kCar);
  const int targets[] = {
      static_cast<int>(OutdoorClass::kManMadeTerrain),
      static_cast<int>(OutdoorClass::kNaturalTerrain),
      static_cast<int>(OutdoorClass::kHighVegetation),
      static_cast<int>(OutdoorClass::kLowVegetation),
  };
  std::printf("\nSource: %s (Semantic3D label %d)\n", outdoor_class_name(source),
              to_semantic3d_label(source));
  for (int target : targets) {
    Rng rng(62000 + static_cast<std::uint64_t>(target));
    auto make_scene = [&](int) { return gen.generate_with_class(rng, source, 40); };
    AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
    config.success_psr = 0.98f;
    const HidingRow row =
        hiding_row(*model, make_scene, scale().hiding_scenes, source, target, config);
    char label[64];
    std::snprintf(label, sizeof(label), "->%s(%d)", outdoor_class_name(target),
                  to_semantic3d_label(target));
    print_hiding_row(label, row);
  }
  std::printf("\nExpected shape (paper Table VII): PSR near 95%% when vegetation is\n"
              "the target, lower (~73-85%%) for the terrain targets; OOB accuracy\n"
              "within ~1%% of overall accuracy.\n");
  return 0;
}
