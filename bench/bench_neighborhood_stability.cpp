// Reproduces the paper's §V-B supporting evidence for Finding 1: "over
// 88% of the neighborhood points are changed after coordinate-based
// perturbation". Measures the fraction of kNN neighborhoods that change
// when coordinates are perturbed at several magnitudes, and a
// google-benchmark timing of the kNN kernels.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "pcss/pointcloud/knn.h"

using pcss::bench::print_header;
using pcss::pointcloud::Vec3;
using pcss::tensor::Rng;

namespace {

void report_stability() {
  print_header("SSV-B evidence - kNN neighborhood stability under coordinate noise");
  pcss::train::ModelZoo zoo;
  const auto clouds = zoo.indoor_eval_scenes(2, 9200);
  const int k = 12;
  std::printf("\n  %-12s %s\n", "perturbation", "neighborhoods changed");
  for (float eps : {0.005f, 0.02f, 0.05f, 0.1f}) {
    double changed = 0.0;
    for (const auto& cloud : clouds) {
      const auto before = pcss::pointcloud::knn_self(cloud.positions, k, true);
      Rng rng(1234);
      auto moved = cloud.positions;
      for (auto& p : moved) {
        for (int a = 0; a < 3; ++a) p[a] += rng.uniform(-eps, eps);
      }
      const auto after = pcss::pointcloud::knn_self(moved, k, true);
      changed += pcss::pointcloud::neighborhood_change_fraction(before, after, k);
    }
    std::printf("  +-%-10.3f %6.2f%%\n", eps, 100.0 * changed / clouds.size());
  }
  std::printf("\nExpected shape (paper SSV-B): at attack-scale perturbations the\n"
              "overwhelming majority (>88%% in the paper) of neighborhoods change,\n"
              "which is why coordinate attacks are hard to control (Finding 1).\n");
}

std::vector<Vec3> random_points(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pts(static_cast<size_t>(n));
  for (auto& p : pts) p = {rng.uniform(0, 8), rng.uniform(0, 6), rng.uniform(0, 3)};
  return pts;
}

void BM_KnnBrute(benchmark::State& state) {
  const auto pts = random_points(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    auto idx = pcss::pointcloud::knn_self(pts, 12, true);
    benchmark::DoNotOptimize(idx.data());
  }
}

void BM_KnnGrid(benchmark::State& state) {
  const auto pts = random_points(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    auto idx = pcss::pointcloud::knn_self_grid(pts, 12, true);
    benchmark::DoNotOptimize(idx.data());
  }
}

BENCHMARK(BM_KnnBrute)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KnnGrid)->Arg(512)->Arg(2048)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_stability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
