#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "pcss/core/attack.h"
#include "pcss/core/attack_engine.h"
#include "pcss/core/experiment.h"
#include "pcss/core/metrics.h"
#include "pcss/runner/perf.h"
#include "pcss/runner/scale.h"
#include "pcss/train/model_zoo.h"

/// Shared configuration for the paper-reproduction benchmarks.
///
/// Every bench binary regenerates one table or figure of the paper using
/// the CPU-scaled substitutes documented in DESIGN.md. Sizing (including
/// the PCSS_FAST smoke mode) lives in pcss::runner::Scale so the benches
/// and the `pcss_run` CLI can never disagree about it; the defaults are
/// tuned so the full suite finishes in tens of minutes on one core.
namespace pcss::bench {

using pcss::runner::fast_mode;
using pcss::runner::Scale;

inline Scale scale() { return pcss::runner::active_scale(); }

inline pcss::core::AttackConfig base_config(pcss::core::AttackNorm norm,
                                            pcss::core::AttackField field) {
  const Scale s = scale();
  pcss::core::AttackConfig config;
  config.norm = norm;
  config.field = field;
  config.steps = s.pgd_steps;
  config.cw_steps = s.cw_steps;
  config.epsilon = s.eps_color;
  config.coord_epsilon = s.eps_coord;
  return config;
}

inline void print_header(const std::string& title) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(synthetic-substrate reproduction; see EXPERIMENTS.md for the\n");
  std::printf(" paper-vs-measured comparison and DESIGN.md for substitutions)\n");
  std::printf("=============================================================\n");
}

inline void print_baw_row(const char* label, const pcss::core::CaseRecord& r,
                          const char* dist_name) {
  std::printf("  %-6s %s=%9.2f  Acc=%6.2f%%  aIoU=%6.2f%%\n", label, dist_name, r.distance,
              100.0 * r.accuracy, 100.0 * r.aiou);
}

inline void print_baw(const pcss::core::BestAvgWorst& agg, const char* dist_name) {
  print_baw_row("Best", agg.best, dist_name);
  print_baw_row("Avg", agg.avg, dist_name);
  print_baw_row("Worst", agg.worst, dist_name);
}

/// Figures output directory (created on demand).
inline std::string figures_dir() {
  const std::string dir = "figures";
  std::filesystem::create_directories(dir);
  return dir;
}

// -- Perf reporting -----------------------------------------------------------
//
// Every bench that drives attacks reports wall-clock and attack-step
// throughput in the fixed "[perf]" format of pcss/runner/perf.h (shared
// with the pcss_run CLI), so the batching speedup from
// AttackEngine::run_batch can be tracked across PRs by grepping logs.

using pcss::runner::print_perf;
using pcss::runner::WallTimer;

/// Sum of steps_used over a batch of results.
inline long long total_steps(const std::vector<pcss::core::AttackResult>& results) {
  long long steps = 0;
  for (const auto& r : results) steps += r.steps_used;
  return steps;
}

}  // namespace pcss::bench
