#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "pcss/core/attack.h"
#include "pcss/core/attack_engine.h"
#include "pcss/core/experiment.h"
#include "pcss/core/metrics.h"
#include "pcss/train/model_zoo.h"

/// Shared configuration for the paper-reproduction benchmarks.
///
/// Every bench binary regenerates one table or figure of the paper using
/// the CPU-scaled substitutes documented in DESIGN.md. `PCSS_FAST=1`
/// shrinks scene counts and step budgets for smoke runs; the defaults are
/// tuned so the full suite finishes in tens of minutes on one core.
namespace pcss::bench {

struct Scale {
  int scenes = 3;          ///< clouds per configuration
  int hiding_scenes = 2;   ///< clouds per (model, source-class) pair
  int pgd_steps = 50;      ///< paper: 50
  int cw_steps = 150;      ///< paper: 1000 (CPU-scaled)
  float eps_color = 0.15f; ///< bounded color clip
  float eps_coord = 0.30f; ///< bounded coordinate clip (meters; about half
                           ///< the mean point spacing of the 512-pt rooms)
};

inline bool fast_mode() {
  const char* env = std::getenv("PCSS_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline Scale scale() {
  Scale s;
  if (fast_mode()) {
    s.scenes = 2;
    s.hiding_scenes = 1;
    s.pgd_steps = 10;
    s.cw_steps = 25;
  }
  return s;
}

inline pcss::core::AttackConfig base_config(pcss::core::AttackNorm norm,
                                            pcss::core::AttackField field) {
  const Scale s = scale();
  pcss::core::AttackConfig config;
  config.norm = norm;
  config.field = field;
  config.steps = s.pgd_steps;
  config.cw_steps = s.cw_steps;
  config.epsilon = s.eps_color;
  config.coord_epsilon = s.eps_coord;
  return config;
}

inline void print_header(const std::string& title) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(synthetic-substrate reproduction; see EXPERIMENTS.md for the\n");
  std::printf(" paper-vs-measured comparison and DESIGN.md for substitutions)\n");
  std::printf("=============================================================\n");
}

inline void print_baw_row(const char* label, const pcss::core::CaseRecord& r,
                          const char* dist_name) {
  std::printf("  %-6s %s=%9.2f  Acc=%6.2f%%  aIoU=%6.2f%%\n", label, dist_name, r.distance,
              100.0 * r.accuracy, 100.0 * r.aiou);
}

inline void print_baw(const pcss::core::BestAvgWorst& agg, const char* dist_name) {
  print_baw_row("Best", agg.best, dist_name);
  print_baw_row("Avg", agg.avg, dist_name);
  print_baw_row("Worst", agg.worst, dist_name);
}

/// Figures output directory (created on demand).
inline std::string figures_dir() {
  const std::string dir = "figures";
  std::filesystem::create_directories(dir);
  return dir;
}

// -- Perf reporting -----------------------------------------------------------
//
// Every bench that drives attacks reports wall-clock and attack-step
// throughput in a fixed "[perf]" format, so the batching speedup from
// AttackEngine::run_batch can be tracked across PRs by grepping logs.

struct WallTimer {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
};

inline void print_perf(const char* label, double wall_seconds, long long attack_steps) {
  std::printf("  [perf] %-32s %8.2fs wall  %7lld steps  %8.1f steps/s\n", label,
              wall_seconds, attack_steps,
              wall_seconds > 0.0 ? static_cast<double>(attack_steps) / wall_seconds : 0.0);
}

/// Sum of steps_used over a batch of results.
inline long long total_steps(const std::vector<pcss::core::AttackResult>& results) {
  long long steps = 0;
  for (const auto& r : results) steps += r.steps_used;
  return steps;
}

}  // namespace pcss::bench
