// Reproduces Table IX: transferability of norm-unbounded color
// adversarial samples. Upper block: samples generated on the
// "pre-trained" PointNet++ (seed 1) evaluated on an independently
// "self-trained" PointNet++ (seed 2). Lower block: samples generated on
// ResGCN evaluated on PointNet++ (cross-family). Raw-unit perturbations
// make the paper's range-remapping step implicit (see core/transfer.h).
#include "bench_common.h"
#include "pcss/core/transfer.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::bench::scale;

namespace {

struct TransferRow {
  double acc = 0.0, aiou = 0.0;
};

void print_row(const char* label, const TransferRow& r, int n) {
  std::printf("  %-34s Acc=%6.2f%%  aIoU=%6.2f%%\n", label, 100.0 * r.acc / n,
              100.0 * r.aiou / n);
}

}  // namespace

int main() {
  print_header("Table IX - attack transferability (norm-unbounded, color)");
  pcss::train::ModelZoo zoo;
  auto pn_pre = zoo.pointnet2_indoor(/*seed=*/1);
  auto pn_self = zoo.pointnet2_indoor(/*seed=*/2);
  auto resgcn = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes);

  AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  config.success_accuracy = 1.0f / 13.0f;

  TransferRow pre_self_attack, self_transfer;
  TransferRow rg_self_attack, rg_to_pn;
  for (const auto& cloud : clouds) {
    // Upper block: PN++(pre-trained) -> PN++(self-trained).
    const AttackResult adv_pn = run_attack(*pn_pre, cloud, config);
    const SegMetrics m_self = evaluate_segmentation(adv_pn.predictions, cloud.labels, 13);
    pre_self_attack.acc += m_self.accuracy;
    pre_self_attack.aiou += m_self.aiou;
    const SegMetrics m_tr = evaluate_transfer(*pn_self, adv_pn.perturbed, 13);
    self_transfer.acc += m_tr.accuracy;
    self_transfer.aiou += m_tr.aiou;

    // Lower block: ResGCN -> PN++ (cross-family).
    const AttackResult adv_rg = run_attack(*resgcn, cloud, config);
    const SegMetrics m_rg = evaluate_segmentation(adv_rg.predictions, cloud.labels, 13);
    rg_self_attack.acc += m_rg.accuracy;
    rg_self_attack.aiou += m_rg.aiou;
    const SegMetrics m_x = evaluate_transfer(*pn_pre, adv_rg.perturbed, 13);
    rg_to_pn.acc += m_x.accuracy;
    rg_to_pn.aiou += m_x.aiou;
  }
  const int n = static_cast<int>(clouds.size());
  const SegMetrics clean_self = clean_metrics(*pn_self, clouds);
  const SegMetrics clean_pre = clean_metrics(*pn_pre, clouds);
  std::printf("\nClean: PN++(pre)=%.2f%%  PN++(self)=%.2f%%\n", 100.0 * clean_pre.accuracy,
              100.0 * clean_self.accuracy);
  std::printf("\n[PN++ adversarial samples]\n");
  print_row("PointNet++ (pre-trained, white-box)", pre_self_attack, n);
  print_row("PointNet++ (self-trained, transfer)", self_transfer, n);
  std::printf("[ResGCN adversarial samples]\n");
  print_row("ResGCN (white-box)", rg_self_attack, n);
  print_row("PointNet++ (transfer)", rg_to_pn, n);
  std::printf("\nExpected shape (paper Table IX / Finding 8): transferred samples are\n"
              "less devastating than white-box ones but still push accuracy well\n"
              "below the clean baseline, both across seeds and across families.\n");
  return 0;
}
