// Reproduces Table V: norm-bounded object hiding (PGD-style, Algorithm 1)
// with the same (model, source class) grid as Table IV.
#include "bench_hiding.h"

using namespace pcss::core;
using namespace pcss::bench;
using pcss::data::IndoorSceneGenerator;
using pcss::data::indoor_class_name;
using pcss::tensor::Rng;

namespace {

constexpr int kSources[] = {5, 6, 7, 8, 10, 11};
constexpr int kTargetWall = 2;

void run_for_model(SegmentationModel& model) {
  std::printf("\n--- %s ---\n", model.name().c_str());
  IndoorSceneGenerator gen(pcss::train::zoo_indoor_config());
  for (int source : kSources) {
    Rng rng(52000 + static_cast<std::uint64_t>(source));
    auto make_scene = [&](int) { return gen.generate_with_class(rng, source, 10); };
    AttackConfig config = base_config(AttackNorm::kBounded, AttackField::kColor);
    config.success_psr = 0.98f;
    const HidingRow row = hiding_row(model, make_scene, scale().hiding_scenes, source,
                                     kTargetWall, config);
    print_hiding_row(indoor_class_name(source), row);
  }
}

}  // namespace

int main() {
  print_header("Table V - object hiding (norm-bounded), sources -> wall");
  pcss::train::ModelZoo zoo;
  {
    auto m = zoo.pointnet2_indoor();
    run_for_model(*m);
  }
  {
    auto m = zoo.resgcn_indoor();
    run_for_model(*m);
  }
  {
    auto m = zoo.randla_indoor();
    run_for_model(*m);
  }
  std::printf("\nExpected shape (paper Table V): PSR lower than the norm-unbounded\n"
              "attack of Table IV for every pair (Finding 4), with table/chair\n"
              "dropping hardest; the bounded clip keeps L2 smaller.\n");
  return 0;
}
