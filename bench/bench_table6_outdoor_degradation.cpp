// Reproduces Table VI: performance degradation on the outdoor dataset
// (Semantic3D substitute) against RandLA-Net — the only paper model that
// scales to these clouds — comparing random noise with the norm-unbounded
// attack at matched L2.
#include "bench_common.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_baw;
using pcss::bench::print_header;
using pcss::bench::scale;

int main() {
  print_header("Table VI - outdoor performance degradation, RandLA-Net");
  pcss::train::ModelZoo zoo;
  auto model = zoo.randla_outdoor();
  const auto clouds = zoo.outdoor_eval_scenes(scale().scenes);

  const SegMetrics clean = clean_metrics(*model, clouds);
  std::printf("\nClean baseline: Acc=%.2f%%  aIoU=%.2f%%  (%d scenes, %lld pts each)\n",
              100.0 * clean.accuracy, 100.0 * clean.aiou, scale().scenes,
              static_cast<long long>(clouds.front().size()));

  AttackConfig unbounded = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  unbounded.success_accuracy = 1.0f / 8.0f;  // 8 outdoor classes
  std::vector<CaseRecord> unb_records, noise_records;
  for (size_t i = 0; i < clouds.size(); ++i) {
    const AttackResult adv = run_attack(*model, clouds[i], unbounded);
    const SegMetrics m = evaluate_segmentation(adv.predictions, clouds[i].labels, 8);
    unb_records.push_back({adv.l2_color, m.accuracy, m.aiou});
    const AttackResult noise =
        random_noise_baseline(*model, clouds[i], adv.l2_color, 8000 + i);
    const SegMetrics mn = evaluate_segmentation(noise.predictions, clouds[i].labels, 8);
    noise_records.push_back({noise.l2_color, mn.accuracy, mn.aiou});
  }
  std::printf("\n[Random noise]\n");
  print_baw(aggregate_cases(noise_records), "L2");
  std::printf("[Norm-unbounded]\n");
  print_baw(aggregate_cases(unb_records), "L2");

  std::printf("\nExpected shape (paper Table VI): the unbounded attack drops outdoor\n"
              "accuracy near the 1/8 random-guess floor while equal-L2 random noise\n"
              "leaves the model mostly intact; per-scene variance is larger than\n"
              "indoors.\n");
  return 0;
}
