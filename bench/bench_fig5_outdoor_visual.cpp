// Reproduces Figure 5: an outdoor scene under the color-based
// norm-unbounded performance-degradation attack against RandLA-Net.
#include "bench_common.h"
#include "pcss/viz/render.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::viz::Image;

int main() {
  print_header("Figure 5 - outdoor degradation visualization (RandLA-Net)");
  pcss::train::ModelZoo zoo;
  auto model = zoo.randla_outdoor();
  const auto clouds = zoo.outdoor_eval_scenes(1, /*seed=*/5100);
  const auto& cloud = clouds.front();
  const std::string dir = pcss::bench::figures_dir();

  AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  config.success_accuracy = 1.0f / 8.0f;

  const auto clean_pred = model->predict(cloud);
  const AttackResult adv = run_attack(*model, cloud, config);

  const int w = 320, h = 240;
  const Image panel = Image::hstack({
      pcss::viz::render_cloud_colors(cloud, w, h),
      pcss::viz::render_cloud_labels(cloud, clean_pred, w, h),
      pcss::viz::render_cloud_colors(adv.perturbed, w, h),
      pcss::viz::render_cloud_labels(adv.perturbed, adv.predictions, w, h),
  });
  const std::string path = dir + "/fig5_outdoor.ppm";
  panel.save_ppm(path);

  const double clean_acc = evaluate_segmentation(clean_pred, cloud.labels, 8).accuracy;
  const double adv_acc = evaluate_segmentation(adv.predictions, cloud.labels, 8).accuracy;
  std::printf("  acc %.2f%% -> %.2f%% (L2=%.2f), wrote %s\n", 100.0 * clean_acc,
              100.0 * adv_acc, adv.l2_color, path.c_str());
  std::printf("\nExpected shape (paper Fig. 5): seemingly small color perturbations\n"
              "drastically change the outdoor segmentation result.\n");
  return 0;
}
