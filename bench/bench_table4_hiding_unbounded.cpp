// Reproduces Table IV: norm-unbounded object hiding on indoor scenes —
// window/door/table/chair/bookcase/board recolored toward "wall" — for
// all three models, reporting PSR and out-of-band accuracy/aIoU.
#include "bench_hiding.h"

using namespace pcss::core;
using namespace pcss::bench;
using pcss::data::IndoorClass;
using pcss::data::IndoorSceneGenerator;
using pcss::data::indoor_class_name;
using pcss::tensor::Rng;

namespace {

constexpr int kSources[] = {5, 6, 7, 8, 10, 11};  // paper's source labels
constexpr int kTargetWall = 2;

void run_for_model(SegmentationModel& model, AttackNorm norm) {
  std::printf("\n--- %s ---\n", model.name().c_str());
  IndoorSceneGenerator gen(pcss::train::zoo_indoor_config());
  for (int source : kSources) {
    Rng rng(42000 + static_cast<std::uint64_t>(source));
    auto make_scene = [&](int) { return gen.generate_with_class(rng, source, 10); };
    AttackConfig config = base_config(norm, AttackField::kColor);
    config.success_psr = 0.98f;
    const HidingRow row = hiding_row(model, make_scene, scale().hiding_scenes, source,
                                     kTargetWall, config);
    print_hiding_row(indoor_class_name(source), row);
  }
}

}  // namespace

int main() {
  print_header("Table IV - object hiding (norm-unbounded), sources -> wall");
  pcss::train::ModelZoo zoo;
  {
    auto m = zoo.pointnet2_indoor();
    run_for_model(*m, AttackNorm::kUnbounded);
  }
  {
    auto m = zoo.resgcn_indoor();
    run_for_model(*m, AttackNorm::kUnbounded);
  }
  {
    auto m = zoo.randla_indoor();
    run_for_model(*m, AttackNorm::kUnbounded);
  }
  std::printf("\nExpected shape (paper Table IV): high PSR (>90%% in the paper) for\n"
              "the flat wall-mounted classes (window, door, bookcase, board);\n"
              "markedly lower PSR for complex shapes (table, chair); OOB accuracy\n"
              "within ~10%% of the overall accuracy.\n");
  return 0;
}
