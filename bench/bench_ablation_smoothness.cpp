// Ablation: the smoothness penalty weight lambda2 (Eq. 9), a design
// choice the paper adds on top of vanilla CW ("our norm-unbounded attack
// adds a new smoothness penalty"). Sweeps lambda2 and reports attack
// strength, perturbation L2, and a local color-roughness statistic, on
// ResGCN indoor scenes.
#include <cmath>

#include "bench_common.h"
#include "pcss/pointcloud/knn.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::bench::scale;

namespace {

/// Mean color distance between each point and its alpha nearest spatial
/// neighbors — the quantity Eq. 9 suppresses.
double color_roughness(const PointCloud& cloud, int alpha) {
  const auto idx = pcss::pointcloud::knn_self(cloud.positions, alpha, false);
  double acc = 0.0;
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    for (int k = 0; k < alpha; ++k) {
      const auto j = static_cast<size_t>(idx[i * alpha + k]);
      double d2 = 0.0;
      for (int a = 0; a < 3; ++a) {
        const double d = cloud.colors[static_cast<size_t>(i)][a] - cloud.colors[j][a];
        d2 += d * d;
      }
      acc += std::sqrt(d2);
    }
  }
  return acc / static_cast<double>(cloud.size() * alpha);
}

}  // namespace

int main() {
  print_header("Ablation - smoothness penalty weight lambda2 (Eq. 9), ResGCN, CW");
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(2, 7200);

  std::printf("\n  %-8s %-10s %-10s %-12s %s\n", "lambda2", "Acc(%)", "L2", "roughness",
              "(clean roughness)");
  const double clean_rough = color_roughness(clouds.front(), 10);
  for (float lambda2 : {0.0f, 0.05f, 0.1f, 0.5f, 2.0f}) {
    double acc = 0.0, l2 = 0.0, rough = 0.0;
    for (const auto& cloud : clouds) {
      AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
      config.lambda2 = lambda2;
      config.cw_steps = scale().cw_steps / 2;
      const AttackResult r = run_attack(*model, cloud, config);
      acc += evaluate_segmentation(r.predictions, cloud.labels, 13).accuracy;
      l2 += r.l2_color;
      rough += color_roughness(r.perturbed, 10);
    }
    const double n = static_cast<double>(clouds.size());
    std::printf("  %-8.2f %-10.2f %-10.2f %-12.4f %.4f\n", lambda2, 100.0 * acc / n,
                l2 / n, rough / n, clean_rough);
  }
  std::printf("\nExpected shape: larger lambda2 buys smoother (less detectable)\n"
              "perturbations at a modest cost in attack strength; lambda2=0.1 (the\n"
              "paper's setting) sits on the knee of that trade-off.\n");
  return 0;
}
