// Reproduces Figures 1 and 4: object hiding in an office-like scene —
// the board (and in Fig. 1 additional furniture) recolored so the model
// labels it as wall, making it "disappear" from the segmentation. Writes
// a 4-panel PPM: original scene, perturbed scene, original segmentation,
// perturbed segmentation (the paper's Fig. 4 layout).
#include "bench_common.h"
#include "pcss/data/indoor.h"
#include "pcss/viz/render.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::data::IndoorClass;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;
using pcss::viz::Image;

int main() {
  print_header("Figures 1 & 4 - object-hiding visualization (board -> wall, PointNet++)");
  pcss::train::ModelZoo zoo;
  auto model = zoo.pointnet2_indoor();
  IndoorSceneGenerator gen(pcss::train::zoo_indoor_config());
  Rng rng(4100);
  const auto cloud =
      gen.generate_with_class(rng, static_cast<int>(IndoorClass::kBoard), 12);
  const std::string dir = pcss::bench::figures_dir();

  const auto mask = mask_for_class(cloud.labels, static_cast<int>(IndoorClass::kBoard));
  AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
  config.objective = AttackObjective::kObjectHiding;
  config.target_class = static_cast<int>(IndoorClass::kWall);
  config.target_mask = mask;
  config.success_psr = 0.98f;

  const auto clean_pred = model->predict(cloud);
  const AttackResult adv = run_attack(*model, cloud, config);

  const int w = 260, h = 260;
  const Image panel = Image::hstack({
      pcss::viz::render_cloud_colors(cloud, w, h, pcss::viz::ViewAxis::kSide),
      pcss::viz::render_cloud_colors(adv.perturbed, w, h, pcss::viz::ViewAxis::kSide),
      pcss::viz::render_cloud_labels(cloud, clean_pred, w, h, pcss::viz::ViewAxis::kSide),
      pcss::viz::render_cloud_labels(adv.perturbed, adv.predictions, w, h,
                                     pcss::viz::ViewAxis::kSide),
  });
  const std::string path = dir + "/fig4_board_to_wall.ppm";
  panel.save_ppm(path);

  const double psr = point_success_rate(adv.predictions, mask,
                                        static_cast<int>(IndoorClass::kWall));
  const auto oob = evaluate_oob(adv.predictions, cloud.labels, 13, mask);
  std::printf("  board points: %lld  PSR=%.2f%%  OOB acc=%.2f%%  L2=%.2f\n",
              static_cast<long long>(pcss::data::count_label(
                  cloud, static_cast<int>(IndoorClass::kBoard))),
              100.0 * psr, 100.0 * oob.accuracy, adv.l2_color);
  std::printf("  wrote %s\n", path.c_str());
  std::printf("\nExpected shape (paper Figs. 1/4): most board points classified as\n"
              "wall after the attack, i.e. the board disappears from the model's\n"
              "view while the rest of the scene is barely affected.\n");
  return 0;
}
