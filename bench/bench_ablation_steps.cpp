// Ablation: attack step budget. The paper uses Steps=50 (bounded) and
// 1000 (unbounded) and notes cost is linear in Steps; this sweep shows
// the convergence curve, i.e. how much of the damage lands in the first
// tens of iterations — the basis for this repo's CPU-scaled default of
// 150 CW steps.
#include "bench_common.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;

int main() {
  print_header("Ablation - step budget convergence, ResGCN (degradation, color)");
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(2, 7300);

  std::printf("\n[norm-bounded]\n  %-7s %-9s %s\n", "steps", "Acc(%)", "L2");
  for (int steps : {5, 15, 30, 50}) {
    double acc = 0.0, l2 = 0.0;
    for (const auto& cloud : clouds) {
      AttackConfig config = base_config(AttackNorm::kBounded, AttackField::kColor);
      config.steps = steps;
      const AttackResult r = run_attack(*model, cloud, config);
      acc += evaluate_segmentation(r.predictions, cloud.labels, 13).accuracy;
      l2 += r.l2_color;
    }
    std::printf("  %-7d %-9.2f %.2f\n", steps, 100.0 * acc / clouds.size(),
                l2 / clouds.size());
  }

  std::printf("\n[norm-unbounded]\n  %-7s %-9s %s\n", "steps", "Acc(%)", "L2");
  for (int steps : {10, 40, 100, 200}) {
    double acc = 0.0, l2 = 0.0;
    for (const auto& cloud : clouds) {
      AttackConfig config = base_config(AttackNorm::kUnbounded, AttackField::kColor);
      config.cw_steps = steps;
      const AttackResult r = run_attack(*model, cloud, config);
      acc += evaluate_segmentation(r.predictions, cloud.labels, 13).accuracy;
      l2 += r.l2_color;
    }
    std::printf("  %-7d %-9.2f %.2f\n", steps, 100.0 * acc / clouds.size(),
                l2 / clouds.size());
  }
  std::printf("\nExpected shape: accuracy falls steeply within the first tens of\n"
              "steps and flattens, so the paper's 1000-step budget is a safety\n"
              "margin rather than a requirement — justifying the CPU-scaled 150.\n");
  return 0;
}
