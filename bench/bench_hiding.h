#pragma once

// Shared driver for the object-hiding tables (IV, V, VII): for each
// (model, source class) pair, select scenes that contain enough source
// points (the paper's scene-selection rule), run the attack toward the
// target class, and report PSR plus out-of-band metrics.
#include <functional>

#include "bench_common.h"
#include "pcss/data/indoor.h"

namespace pcss::bench {

struct HidingRow {
  double l2 = 0.0;
  double psr = 0.0;
  double oob_acc = 0.0, acc = 0.0;
  double oob_aiou = 0.0, aiou = 0.0;
  int scenes = 0;
  double wall_seconds = 0.0;     ///< attack time across the row's scenes
  long long attack_steps = 0;    ///< optimizer steps across the row's scenes
};

/// Runs the hiding attack over `scenes` clouds supplied by `make_scene`
/// (each must contain source-class points) and averages the paper's
/// Table IV/V row metrics. Each scene gets its own AttackEngine because
/// the target_mask is scene-specific.
inline HidingRow hiding_row(pcss::core::SegmentationModel& model,
                            const std::function<pcss::core::PointCloud(int)>& make_scene,
                            int scenes, int source_class, int target_class,
                            pcss::core::AttackConfig config) {
  using namespace pcss::core;
  HidingRow row;
  for (int s = 0; s < scenes; ++s) {
    const PointCloud cloud = make_scene(s);
    const auto mask = mask_for_class(cloud.labels, source_class);
    config.objective = AttackObjective::kObjectHiding;
    config.target_class = target_class;
    config.target_mask = mask;
    const AttackEngine engine(model, config);
    const WallTimer timer;
    const AttackResult result = engine.run(cloud);
    row.wall_seconds += timer.seconds();
    row.attack_steps += result.steps_used;

    const SegMetrics overall =
        evaluate_segmentation(result.predictions, cloud.labels, model.num_classes());
    const SegMetrics oob =
        evaluate_oob(result.predictions, cloud.labels, model.num_classes(), mask);
    row.l2 += result.l2_color;
    row.psr += point_success_rate(result.predictions, mask, target_class);
    row.oob_acc += oob.accuracy;
    row.acc += overall.accuracy;
    row.oob_aiou += oob.aiou;
    row.aiou += overall.aiou;
    ++row.scenes;
  }
  const double n = row.scenes;
  row.l2 /= n;
  row.psr /= n;
  row.oob_acc /= n;
  row.acc /= n;
  row.oob_aiou /= n;
  row.aiou /= n;
  return row;
}

inline void print_hiding_row(const char* source_name, const HidingRow& r) {
  std::printf("  %-9s L2=%6.2f  PSR=%6.2f%%  OOB/Acc=%6.2f/%6.2f%%  "
              "OOB/aIoU=%6.2f/%6.2f%%\n",
              source_name, r.l2, 100.0 * r.psr, 100.0 * r.oob_acc, 100.0 * r.acc,
              100.0 * r.oob_aiou, 100.0 * r.aiou);
  print_perf(source_name, r.wall_seconds, r.attack_steps);
}

}  // namespace pcss::bench
