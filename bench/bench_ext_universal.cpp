// Extension bench (paper §VI limitation 4): a real autonomous-driving
// attacker must fool a *sequence* of point clouds. Following the min-max
// multi-input formulation the paper cites, this optimizes one shared
// color perturbation across several scenes and compares it with
// per-scene attacks and random noise.
#include "bench_common.h"

using namespace pcss::core;
using pcss::bench::base_config;
using pcss::bench::print_header;
using pcss::bench::print_perf;
using pcss::bench::scale;
using pcss::bench::total_steps;
using pcss::bench::WallTimer;

int main() {
  print_header("Extension (SSVI-L4) - universal multi-cloud color perturbation, ResGCN");
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(scale().scenes, 9700);

  AttackConfig config = base_config(AttackNorm::kBounded, AttackField::kColor);
  const AttackEngine engine(*model, config);
  WallTimer shared_timer;
  const SharedDeltaResult universal = engine.run_shared(clouds);
  print_perf("shared-delta run_shared", shared_timer.seconds(),
             static_cast<long long>(universal.steps_used) *
                 static_cast<long long>(clouds.size()));

  double before = 0.0, after = 0.0;
  for (size_t i = 0; i < clouds.size(); ++i) {
    before += universal.accuracy_before[i];
    after += universal.accuracy_after[i];
  }
  before /= static_cast<double>(clouds.size());
  after /= static_cast<double>(clouds.size());

  // Per-scene (non-universal) attacks as the upper bound.
  WallTimer batch_timer;
  const std::vector<AttackResult> results = engine.run_batch(clouds);
  print_perf("per-scene run_batch", batch_timer.seconds(), total_steps(results));
  double per_scene = 0.0;
  for (size_t i = 0; i < clouds.size(); ++i) {
    per_scene +=
        evaluate_segmentation(results[i].predictions, clouds[i].labels, 13).accuracy;
  }
  per_scene /= static_cast<double>(clouds.size());

  std::printf("\n  mean accuracy over %zu scenes:\n", clouds.size());
  std::printf("  clean                    %6.2f%%\n", 100.0 * before);
  std::printf("  one shared perturbation  %6.2f%%\n", 100.0 * after);
  std::printf("  per-scene perturbations  %6.2f%%\n", 100.0 * per_scene);
  std::printf("  (universal steps used: %d, epsilon=%.2f)\n", universal.steps_used,
              config.epsilon);
  std::printf("\nExpected shape: the shared perturbation sits between clean and the\n"
              "per-scene attacks — one delta transfers across scenes, as the 2D\n"
              "multi-image result the paper cites predicts for 3D.\n");
  return 0;
}
