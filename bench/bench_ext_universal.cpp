// Extension bench (paper §VI limitation 4): a real autonomous-driving
// attacker must fool a *sequence* of point clouds. Following the min-max
// multi-input formulation the paper cites, this optimizes one shared
// color perturbation across several scenes and compares it with
// per-scene attacks.
//
// Thin wrapper over the registered "ext_universal" spec: the runner
// executes (or replays from artifacts/results/) and this binary only
// formats. `pcss_run run ext_universal` shares the same cache.
#include "bench_common.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/zoo_provider.h"

using pcss::bench::print_header;
using pcss::bench::print_perf;

int main() {
  print_header("Extension (SSVI-L4) - universal multi-cloud color perturbation, ResGCN");
  pcss::runner::ZooModelProvider provider;
  pcss::runner::ResultStore store;
  const pcss::runner::ExperimentSpec* spec = pcss::runner::find_spec("ext_universal");
  const pcss::runner::RunOutcome out = pcss::runner::run_spec(*spec, provider, store);

  const pcss::runner::ModelSection& resgcn = out.document.models.front();
  const pcss::runner::VariantResult& universal =
      pcss::runner::find_variant(resgcn, "universal");
  const pcss::runner::VariantResult& per_scene =
      pcss::runner::find_variant(resgcn, "per-scene");

  const auto n = static_cast<double>(out.document.scene_count);
  double before = 0.0, after = 0.0;
  for (double a : universal.accuracy_before) before += a;
  for (double a : universal.accuracy_after) after += a;
  before /= n;
  after /= n;

  print_perf(out.cache_hit ? "ext_universal run_spec (cache hit)" : "ext_universal run_spec",
             out.wall_seconds, out.attack_steps);
  std::printf("\n  mean accuracy over %d scenes:\n", out.document.scene_count);
  std::printf("  clean                    %6.2f%%\n", 100.0 * before);
  std::printf("  one shared perturbation  %6.2f%%\n", 100.0 * after);
  std::printf("  per-scene perturbations  %6.2f%%\n", 100.0 * per_scene.aggregate.avg.accuracy);
  std::printf("  (universal steps used: %d, epsilon=%.2f)\n", universal.shared_steps,
              out.document.scale.eps_color);
  std::printf("  result document: %s\n", out.path.c_str());
  std::printf("\nExpected shape: the shared perturbation sits between clean and the\n"
              "per-scene attacks — one delta transfers across scenes, as the 2D\n"
              "multi-image result the paper cites predicts for 3D.\n");
  return 0;
}
